"""E15 (extension) — view-synchronous multicast cost on the membership.

The membership protocol exists to support layers like this (ISIS); these
benchmarks quantify what the layer costs:

* steady-state multicast: exactly n-1 messages each, zero overhead;
* flush overhead at a view change: proportional to the number of *torn*
  (dead-sender) messages, not to total traffic;
* same-set guarantee verified across a multicast storm with a mid-broadcast
  sender crash.
"""

from __future__ import annotations

from repro.core.service import MembershipCluster
from repro.extensions.vsync import VsyncLayer
from repro.ids import pid
from repro.model.events import EventKind
from repro.sim.failures import crash_after_matching_sends, payload_type_is
from repro.sim.network import FixedDelay

from conftest import assert_safe, record_rows


def build(n: int, seed: int = 0):
    cluster = MembershipCluster.of_size(n, seed=seed, delay_model=FixedDelay(1.0))
    layers = {p: VsyncLayer(m) for p, m in cluster.members.items()}
    return cluster, layers


def vsync_sends(cluster) -> int:
    return cluster.trace.message_count("vsync")


def test_steady_state_multicast_cost(benchmark):
    def run():
        results = {}
        for n in (4, 8, 16):
            cluster, layers = build(n)
            cluster.start()
            cluster.run(until=5.0)
            for i in range(10):
                layers[pid("p1")].multicast(i)
            cluster.settle()
            results[n] = vsync_sends(cluster)
        return results

    results = benchmark(run)
    rows = []
    for n, sends in sorted(results.items()):
        rows.append(
            f"  n={n:3d}   10 multicasts -> {sends:4d} sends "
            f"(= 10 x (n-1) = {10 * (n - 1)})"
        )
        assert sends == 10 * (n - 1)
    record_rows(
        benchmark,
        "E15: steady-state multicast — no vsync overhead",
        "  group size | sends for 10 multicasts",
        rows,
    )


def test_flush_overhead_scales_with_torn_messages(benchmark):
    """Only dead senders' messages are forwarded, each by every agreeing
    member — overhead is per-torn-message, independent of live traffic."""

    def run():
        results = {}
        for torn in (1, 2, 4):
            n = 6
            cluster, layers = build(n, seed=torn)
            crash_after_matching_sends(
                cluster.network,
                cluster.resolve("p4"),
                payload_type_is("VsMessage"),
                # Let `torn` multicasts escape partially: the victim dies on
                # the first send of its (torn+1)-th... simpler: first send of
                # the torn-th message reaches one member then it dies.
                after=(torn - 1) * (n - 1) + 1,
                detail="sender torn",
            )
            cluster.start()
            cluster.run(until=5.0)
            # Background chatter from a live member (never flushed).
            for i in range(5):
                layers[pid("p1")].multicast(f"live-{i}")
            cluster.run(until=6.0)
            for i in range(torn):
                if not cluster.members[pid("p4")].crashed:
                    layers[pid("p4")].multicast(f"torn-{i}")
            cluster.settle()
            assert_safe(cluster)
            forwards = sum(
                1
                for e in cluster.trace.events_of_kind(EventKind.SEND)
                if e.message is not None
                and type(e.message.payload).__name__ == "VsForward"
            )
            results[torn] = forwards
        return results

    results = benchmark(run)
    rows = []
    for torn, forwards in sorted(results.items()):
        rows.append(f"  {torn} torn multicast(s) -> {forwards:3d} flush forwards")
    # Overhead grows with torn count, bounded by holders x view size x torn.
    assert results[1] < results[2] < results[4]
    record_rows(
        benchmark,
        "E15b: flush forwards vs number of torn (dead-sender) multicasts",
        "  torn messages | flush forwards",
        rows,
    )


def test_same_set_through_coordinator_loss(benchmark):
    """A multicast storm while the *coordinator* dies mid-multicast: the
    reconfiguration's agreement points still close every view's set."""

    def run():
        cluster, layers = build(6, seed=9)
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve("p0"),
            payload_type_is("VsMessage"),
            after=2,
            detail="coordinator dies mid-multicast",
        )
        cluster.start()
        cluster.run(until=5.0)
        for i in range(3):
            layers[pid("p2")].multicast(f"chatter-{i}")
        layers[pid("p0")].multicast("coordinator's last words")
        cluster.settle()
        return cluster, layers

    cluster, layers = benchmark(run)
    assert_safe(cluster)
    survivors = {
        p: layer for p, layer in layers.items() if cluster.members[p].is_member
    }
    sets = {frozenset(l.delivered_set(0)) for l in survivors.values()}
    assert len(sets) == 1
    delivered = next(iter(sets))
    rows = [
        f"  survivors: {sorted(p.name for p in survivors)}",
        f"  agreed view-0 delivery set: {len(delivered)} messages "
        f"(3 chatter + the coordinator's torn multicast)",
    ]
    assert len(delivered) == 4
    record_rows(
        benchmark,
        "E15c: same-set delivery through a coordinator crash mid-multicast",
        "  metric | value",
        rows,
    )
