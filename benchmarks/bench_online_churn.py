"""E11 — §7: the protocol is "fully online".

"We can process a constant flow of requests to both remove and add
processes, which is exactly what occurs in actual systems."  We drive long
interleaved streams of joins and failures and verify (a) every operation is
eventually served, (b) the full GMP specification holds over the run, and
(c) throughput per operation stays flat (no blocking between operations).
"""

from __future__ import annotations

from repro.analysis import breakdown
from repro.core.service import MembershipCluster
from repro.properties import check_gmp, format_report
from repro.workloads.churn import mixed_churn

from conftest import record_rows


def run_churn(operations: int, seed: int = 42) -> MembershipCluster:
    cluster = MembershipCluster.of_size(7, seed=seed)
    schedule = mixed_churn(7, operations=operations, seed=seed, mean_gap=35.0)
    schedule.apply(cluster)
    cluster.start()
    cluster.settle(max_events=5_000_000)
    return cluster


def test_online_stream_of_mixed_operations(benchmark):
    operations = 60

    def run():
        return run_churn(operations)

    cluster = benchmark(run)
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
    assert report.ok, format_report(report)
    final_version = cluster.agreed_version()
    counts = breakdown(cluster.trace)
    rows = [
        f"  operations requested:  {operations}",
        f"  view versions installed: {final_version}",
        f"  protocol messages:     {counts.algorithm} "
        f"({counts.algorithm / max(1, final_version):.1f} per view change)",
        f"  final group size:      {len(cluster.agreed_view())}",
    ]
    # Online-ness: the vast majority of requested operations became views
    # (some tail operations can be outstanding at quiescence, e.g. a join
    # whose subject crashed first).
    assert final_version >= operations * 0.8
    record_rows(
        benchmark,
        "E11 (§7): continuous interleaved joins and exclusions",
        "  metric | value",
        rows,
    )


def test_per_operation_cost_is_flat(benchmark):
    """Doubling the stream length doubles total cost: no degradation."""

    def run():
        out = {}
        for ops in (20, 40, 80):
            cluster = run_churn(ops, seed=7)
            out[ops] = (
                breakdown(cluster.trace).algorithm,
                cluster.agreed_version(),
                len(cluster.agreed_view()),
            )
        return out

    results = benchmark(run)
    rows = []
    normalised = {}
    for ops, (messages, versions, final_size) in sorted(results.items()):
        per_view = messages / max(1, versions)
        # The group grows over the run (joins outnumber crashes), and every
        # round's cost is linear in the current size — normalise by the
        # run's mean group size to expose the per-member constant.
        mean_size = (7 + final_size) / 2
        normalised[ops] = per_view / mean_size
        rows.append(
            f"  {ops:3d} operations -> {versions:3d} views, {messages:5d} messages "
            f"({per_view:5.1f}/view; group grew to {final_size}; "
            f"{normalised[ops]:4.2f}/view/member)"
        )
    # The per-member constant is flat within 1.5x across a 4x workload.
    assert max(normalised.values()) <= 1.5 * min(normalised.values())
    record_rows(
        benchmark,
        "E11b: per-view message cost across stream lengths (size-normalised)",
        "  stream length | views installed | total messages",
        rows,
    )
