"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_succeeds(self, capsys):
        assert main(["demo", "--size", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "Sys^" in out

    def test_demo_prints_message_count(self, capsys):
        main(["demo", "--size", "4"])
        assert "protocol messages:" in capsys.readouterr().out


class TestScenario:
    @pytest.mark.parametrize("name", ["figure3", "figure4", "figure11"])
    def test_paper_scenarios_pass(self, name, capsys):
        assert main(["scenario", name]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_table1_lists_initiators(self, capsys):
        assert main(["scenario", "table1"]) == 0
        out = capsys.readouterr().out
        assert "row 1" in out and "row 4" in out

    def test_strawman_scenarios_report_violations(self, capsys):
        main(["scenario", "claim71"])
        out = capsys.readouterr().out
        assert "FAIL" in out
        main(["scenario", "figure11-strawman"])
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "figure99"])


class TestSweep:
    def test_sweep_prints_table(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "3n-5" in out and "5n-9" in out
        # The exact-match column: n=8 row shows 19 twice.
        assert "19     19" in out


class TestCheck:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_storms_pass(self, seed, capsys):
        assert main(["check", "--seed", str(seed)]) == 0
        assert "PASS" in capsys.readouterr().out


class TestExplore:
    def test_explore_exhaustive_scenario(self, capsys):
        assert main(["explore", "--size", "3", "--crash", "p2"]) == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out and "satisfies GMP" in out

    def test_explore_spurious_pairs(self, capsys):
        assert main(["explore", "--size", "3", "--spurious", "p0:p1"]) == 0
        assert "satisfies GMP" in capsys.readouterr().out

    def test_explore_reports_bounded(self, capsys):
        assert (
            main(["explore", "--size", "4", "--crash", "p0", "--max-states", "100"])
            == 0
        )
        assert "bounded" in capsys.readouterr().out


class TestReport:
    def test_report_renders_both_tables(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "best cases" in out and "symmetric" in out
        # E1's exact match shows in the rendered rows.
        assert "3n-5" in out and "5n-9" in out
