"""Tests for the public API: MembershipCluster and GroupMembershipService."""

from __future__ import annotations

import pytest

from repro.core.service import GroupMembershipService, MembershipCluster
from repro.errors import SimulationError
from repro.ids import pid

from conftest import assert_gmp, make_cluster, names


class TestClusterConstruction:
    def test_of_size_names_and_ranks(self):
        cluster = MembershipCluster.of_size(4)
        assert [m.name for m in cluster.initial_view] == ["p0", "p1", "p2", "p3"]

    def test_custom_prefix(self):
        cluster = MembershipCluster.of_size(2, prefix="node")
        assert cluster.initial_view[0].name == "node0"

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            MembershipCluster.of_size(0)

    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError):
            MembershipCluster.of_size(3, detector="psychic")

    def test_double_start_rejected(self):
        cluster = make_cluster(3)
        with pytest.raises(SimulationError):
            cluster.start()


class TestResolution:
    def test_resolve_by_name(self):
        cluster = make_cluster(3)
        assert cluster.resolve("p1") == pid("p1")

    def test_resolve_prefers_latest_incarnation(self):
        cluster = make_cluster(3)
        cluster.crash("p2", at=1.0)
        cluster.settle()
        cluster.join("p2")
        assert cluster.resolve("p2") == pid("p2", 1)

    def test_resolve_unknown_raises(self):
        cluster = make_cluster(3)
        with pytest.raises(KeyError):
            cluster.resolve("ghost")

    def test_resolve_passes_through_pids(self):
        cluster = make_cluster(3)
        assert cluster.resolve(pid("p0")) == pid("p0")


class TestRunControls:
    def test_suspect_requires_scripted_detector(self):
        cluster = make_cluster(3)  # oracle detector
        with pytest.raises(SimulationError):
            cluster.suspect("p0", "p1", at=1.0)

    def test_run_until_agreement(self):
        cluster = make_cluster(5, seed=1)
        cluster.crash("p4", at=5.0)
        cluster.run(until=6.0)  # past the crash: agreement is non-trivial
        assert cluster.run_until_agreement(until=500.0)
        assert names(cluster.agreed_view()) == ["p0", "p1", "p2", "p3"]

    def test_agreed_view_raises_mid_transition(self):
        cluster = make_cluster(5, seed=2)
        cluster.crash("p4", at=5.0)
        cluster.run(until=10.5)  # mid-protocol
        views = cluster.views()
        if len({view for _, view in views.values()}) > 1:
            with pytest.raises(SimulationError):
                cluster.agreed_view()

    def test_partition_and_heal(self):
        cluster = make_cluster(5, seed=3)
        cluster.partition(["p0", "p1", "p2"], ["p3", "p4"])
        cluster.run(until=30.0)
        cluster.heal()
        cluster.settle()
        # Nobody was suspected (oracle never fires for live processes), so
        # the group simply resumes intact.
        assert len(cluster.agreed_view()) == 5
        assert_gmp(cluster)


class TestServiceFacade:
    def test_view_and_version_queries(self):
        cluster = make_cluster(4, seed=4)
        service = GroupMembershipService(cluster, "p2")
        cluster.crash("p3", at=5.0)
        cluster.settle()
        assert service.is_member()
        assert service.current_version() == 1
        assert names(service.current_view()) == ["p0", "p1", "p2"]

    def test_coordinator_query_tracks_reconfiguration(self):
        cluster = make_cluster(4, seed=5)
        service = GroupMembershipService(cluster, "p2")
        assert service.coordinator() == pid("p0")
        cluster.crash("p0", at=5.0)
        cluster.settle()
        assert service.coordinator() == pid("p1")

    def test_report_suspicion_drives_exclusion(self):
        cluster = make_cluster(4, seed=6, detector="scripted")
        service = GroupMembershipService(cluster, "p1")
        cluster.run(until=5.0)
        service.report_suspicion("p3")
        cluster.settle()
        assert "p3" not in names(cluster.agreed_view())
        assert_gmp(cluster)

    def test_view_history(self):
        cluster = make_cluster(4, seed=7)
        service = GroupMembershipService(cluster, "p1")
        cluster.crash("p3", at=5.0)
        cluster.crash("p2", at=40.0)
        cluster.settle()
        history = service.view_history()
        assert [version for version, _ in history] == [1, 2]
        assert names(history[-1][1]) == ["p0", "p1"]
