"""SCH2xx message-schema cross-checker: registry drift fixtures."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import run_lint


def write(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def rules_of(result) -> set[str]:
    return {f.rule for f in result.findings}


def make_protocol(
    tmp_path: Path,
    messages: str,
    codec: str | None = None,
    handler: str | None = None,
) -> Path:
    write(tmp_path, "core/messages.py", messages)
    if codec is not None:
        write(tmp_path, "codec.py", codec)
    if handler is not None:
        write(tmp_path, "handler.py", handler)
    return tmp_path


CLEAN_MESSAGES = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Ping:
        nonce: int

    @dataclass(frozen=True)
    class Pong:
        nonce: int
"""

CLEAN_CODEC = """
    from core.messages import Ping, Pong

    _ENCODERS = {Ping: None, Pong: None}
    _DECODERS = {"Ping": None, "Pong": None}
"""

CLEAN_HANDLER = """
    from core.messages import Ping, Pong

    def on_message(self, sender, payload):
        if isinstance(payload, Ping):
            self.send(sender, Pong(payload.nonce))
        elif isinstance(payload, Pong):
            pass
"""


def test_consistent_registry_is_clean(tmp_path: Path) -> None:
    make_protocol(tmp_path, CLEAN_MESSAGES, CLEAN_CODEC, CLEAN_HANDLER)
    result = run_lint(tmp_path)
    assert result.ok, [f.message for f in result.findings]


def test_unencoded_message_fires_sch201(tmp_path: Path) -> None:
    messages = textwrap.dedent(CLEAN_MESSAGES) + textwrap.dedent(
        """
        @dataclass(frozen=True)
        class Orphan:
            data: int
        """
    )
    make_protocol(tmp_path, messages, CLEAN_CODEC, CLEAN_HANDLER)
    result = run_lint(tmp_path)
    assert "SCH201" in rules_of(result)
    # An unencoded and undispatched type also fires the handler check.
    assert "SCH203" in rules_of(result)
    messages_findings = [f for f in result.findings if f.rule == "SCH201"]
    assert all(f.file == "core/messages.py" for f in messages_findings)


def test_codec_table_mismatch_fires_sch202(tmp_path: Path) -> None:
    codec = """
        from core.messages import Ping, Pong

        _ENCODERS = {Ping: None, Pong: None}
        _DECODERS = {"Ping": None}
    """
    make_protocol(tmp_path, CLEAN_MESSAGES, codec, CLEAN_HANDLER)
    result = run_lint(tmp_path)
    sch202 = [f for f in result.findings if f.rule == "SCH202"]
    assert len(sch202) == 1
    assert "Pong" in sch202[0].message


def test_decoder_without_encoder_fires_sch202(tmp_path: Path) -> None:
    codec = """
        from core.messages import Ping, Pong

        _ENCODERS = {Ping: None, Pong: None}
        _DECODERS = {"Ping": None, "Pong": None, "Ghost": None}
    """
    make_protocol(tmp_path, CLEAN_MESSAGES, codec, CLEAN_HANDLER)
    result = run_lint(tmp_path)
    sch202 = [f for f in result.findings if f.rule == "SCH202"]
    assert len(sch202) == 1
    assert "Ghost" in sch202[0].message


def test_unhandled_message_fires_sch203(tmp_path: Path) -> None:
    handler = """
        from core.messages import Ping

        def on_message(self, sender, payload):
            if isinstance(payload, Ping):
                pass
    """
    make_protocol(tmp_path, CLEAN_MESSAGES, CLEAN_CODEC, handler)
    result = run_lint(tmp_path)
    sch203 = [f for f in result.findings if f.rule == "SCH203"]
    assert len(sch203) == 1
    assert "Pong" in sch203[0].message


def test_types_tuple_counts_as_dispatch(tmp_path: Path) -> None:
    handler = """
        from core.messages import Ping, Pong

        WIRE_TYPES = (Ping, Pong)

        def on_message(self, sender, payload):
            if isinstance(payload, WIRE_TYPES):
                pass
    """
    make_protocol(tmp_path, CLEAN_MESSAGES, CLEAN_CODEC, handler)
    result = run_lint(tmp_path)
    assert "SCH203" not in rules_of(result)


def test_component_types_are_not_wire_messages(tmp_path: Path) -> None:
    # A dataclass referenced inside another message's fields travels inside
    # frames, never as a payload; it needs no codec entry or handler.
    messages = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Op:
            kind: str

        @dataclass(frozen=True)
        class Ping:
            op: Op
    """
    codec = """
        from core.messages import Ping

        _ENCODERS = {Ping: None}
        _DECODERS = {"Ping": None}
    """
    handler = """
        from core.messages import Ping

        def on_message(self, sender, payload):
            if isinstance(payload, Ping):
                pass
    """
    make_protocol(tmp_path, messages, codec, handler)
    result = run_lint(tmp_path)
    assert result.ok, [f.message for f in result.findings]


def test_unregistered_send_fires_sch204(tmp_path: Path) -> None:
    handler = textwrap.dedent(CLEAN_HANDLER) + textwrap.dedent(
        """
        class Rogue:
            def probe(self, target):
                self.send(target, Mystery(1))
        """
    )
    make_protocol(tmp_path, CLEAN_MESSAGES, CLEAN_CODEC, handler)
    result = run_lint(tmp_path)
    sch204 = [f for f in result.findings if f.rule == "SCH204"]
    assert len(sch204) == 1
    assert "Mystery" in sch204[0].message
    assert sch204[0].file == "handler.py"


def test_sch204_allowlisted_send_is_clean(tmp_path: Path) -> None:
    handler = textwrap.dedent(CLEAN_HANDLER) + textwrap.dedent(
        """
        class Rogue:
            def probe(self, target):
                self.send(target, Mystery(1))  # lint: allow[schema]
        """
    )
    make_protocol(tmp_path, CLEAN_MESSAGES, CLEAN_CODEC, handler)
    assert "SCH204" not in rules_of(run_lint(tmp_path))


def test_no_messages_module_skips_schema_pass(tmp_path: Path) -> None:
    # A tree without core/messages.py has no registries to cross-check.
    write(
        tmp_path,
        "lonely.py",
        """
        def probe(self, target):
            self.send(target, Mystery(1))
        """,
    )
    result = run_lint(tmp_path)
    assert "SCH204" not in rules_of(result)
