"""Tests for the §8 phase-reuse optimisation (the paper's future work).

"We are currently investigating an optimization to our algorithm that
would allow a process, in specific circumstances, to take advantage of
previous communication phases initiated by other processes... we would
pare down required communication when failures of reconfiguration
initiators are continuous."
"""

from __future__ import annotations

import pytest

from repro.analysis import breakdown
from repro.core.service import MembershipCluster
from repro.model.events import EventKind
from repro.sim.failures import crash_after_matching_sends, payload_type_is
from repro.sim.network import FixedDelay

from conftest import assert_gmp, names


def cascade_cluster(reuse: bool, seed: int = 0, n: int = 8, failed_initiators: int = 2):
    """p0 crashes; the next `failed_initiators` reconfigurers die right
    after their Propose broadcast (their phase II completed at the outers,
    making their proposal inheritable)."""
    cluster = MembershipCluster.of_size(
        n,
        seed=seed,
        delay_model=FixedDelay(1.0),
        member_kwargs={"reuse_phases": reuse},
    )
    for i in range(1, failed_initiators + 1):
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve(f"p{i}"),
            payload_type_is("Propose"),
            after=n - 1,  # complete the propose broadcast, then die
            detail=f"initiator p{i} dies after proposing",
        )
    cluster.start()
    cluster.crash("p0", at=5.0)
    cluster.settle(max_events=1_000_000)
    return cluster


def reuse_events(cluster) -> int:
    return sum(
        1
        for e in cluster.trace.events_of_kind(EventKind.INTERNAL)
        if e.detail.startswith("reusing predecessor's proposal phase")
    )


class TestCorrectness:
    @pytest.mark.parametrize("failed", [1, 2, 3])
    def test_cascade_safe_with_reuse(self, failed):
        cluster = cascade_cluster(reuse=True, failed_initiators=failed, n=9)
        assert_gmp(cluster, liveness=False)
        survivors = set(names(cluster.agreed_view()))
        crashed = {p.name for p in cluster.trace.crashed()}
        # Every real crash is excluded, every survivor is in the view.
        assert survivors.isdisjoint(crashed)
        assert "p0" in crashed

    def test_reuse_shortens_the_cascade(self):
        # A striking side effect of the optimisation: an initiator whose
        # death trigger is "crash while broadcasting a Propose" never gets
        # to die, because it inherits its predecessor's proposal phase and
        # skips the broadcast entirely.  Fewer casualties, same safety.
        plain = cascade_cluster(reuse=False, failed_initiators=2)
        optimised = cascade_cluster(reuse=True, failed_initiators=2)
        assert_gmp(plain, liveness=False)
        assert_gmp(optimised, liveness=False)
        assert len(optimised.trace.crashed()) < len(plain.trace.crashed())
        assert len(optimised.agreed_view()) > len(plain.agreed_view())

    def test_reuse_actually_triggered(self):
        cluster = cascade_cluster(reuse=True, failed_initiators=2)
        assert reuse_events(cluster) >= 1

    def test_no_reuse_without_flag(self):
        cluster = cascade_cluster(reuse=False, failed_initiators=2)
        assert reuse_events(cluster) == 0

    def test_plain_single_reconfiguration_unaffected(self):
        # With no failed predecessor there is nothing to inherit: identical
        # message counts with and without the flag.
        def run(reuse):
            cluster = MembershipCluster.of_size(
                6,
                seed=1,
                delay_model=FixedDelay(1.0),
                member_kwargs={"reuse_phases": reuse},
            )
            cluster.start()
            cluster.crash("p0", at=5.0)
            cluster.settle()
            return breakdown(cluster.trace).algorithm

        assert run(True) == run(False)


class TestSavings:
    def test_reuse_saves_messages_in_cascades(self):
        plain = cascade_cluster(reuse=False, failed_initiators=1)
        optimised = cascade_cluster(reuse=True, failed_initiators=1)
        cost_plain = breakdown(plain.trace).algorithm
        cost_optimised = breakdown(optimised.trace).algorithm
        # The successor inherits the dead initiator's proposal phase:
        # one Propose broadcast and its OK wave never happen.
        assert cost_optimised < cost_plain

    def test_reuse_fires_in_longer_cascades_too(self):
        for failed in (1, 2, 3):
            cluster = cascade_cluster(reuse=True, failed_initiators=failed, n=9)
            assert reuse_events(cluster) >= 1
            assert_gmp(cluster, liveness=False)


class TestInheritanceFromCoordinator:
    def test_invite_acknowledged_by_majority_is_inherited(self):
        """The optimisation also covers a coordinator that died after its
        Invite reached everyone: the respondents' plans prove the
        invitation phase completed, so the reconfigurer commits the
        exclusion directly."""
        cluster = MembershipCluster.of_size(
            6,
            seed=3,
            delay_model=FixedDelay(1.0),
            member_kwargs={"reuse_phases": True},
        )
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve("p0"),
            payload_type_is("Invite"),
            after=5,  # full invite broadcast, then die before commit
        )
        cluster.start()
        cluster.crash("p5", at=5.0)  # triggers p0's exclusion round
        cluster.settle()
        assert_gmp(cluster, liveness=False)
        assert reuse_events(cluster) == 1
        survivors = names(cluster.agreed_view())
        assert "p5" not in survivors and "p0" not in survivors


class TestAdversarialSafetyWithReuse:
    def test_figure11_still_safe_with_reuse(self):
        """The invisible-commit disambiguation schedule must stay safe when
        phase reuse is enabled (the inheritance condition requires a full
        majority of identical acknowledgements, which Figure 11's split
        responses do not provide)."""
        from repro.properties import check_gmp
        from repro.workloads.scenarios import run_figure11

        cluster = run_figure11(member_kwargs={"reuse_phases": True})
        report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=True)
        assert report.ok
        survivor = cluster.live_members()[0]
        assert str(survivor.state.seq[0]) == "remove(m)"

    @pytest.mark.parametrize("seed", range(12))
    def test_random_storms_safe_with_reuse(self, seed):
        import random

        from repro.properties import check_gmp, format_report

        rng = random.Random(seed * 37 + 11)
        n = rng.randint(4, 9)
        cluster = MembershipCluster.of_size(
            n, seed=seed, member_kwargs={"reuse_phases": True}
        )
        victims = rng.sample(
            [f"p{i}" for i in range(n)], k=rng.randint(1, max(1, (n - 1) // 2))
        )
        t = 5.0
        for victim in victims:
            if rng.random() < 0.5:
                crash_after_matching_sends(
                    cluster.network,
                    cluster.resolve(victim),
                    payload_type_is("Propose", "ReconfigCommit", "Commit", "Invite"),
                    after=rng.randint(1, n - 1),
                )
            else:
                cluster.crash(victim, at=t)
            t += rng.uniform(0.5, 20.0)
        cluster.start()
        cluster.settle(max_events=500_000)
        report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
        assert report.ok, format_report(report)
