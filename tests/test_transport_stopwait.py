"""Unit and property tests for the alternating-bit FIFO link (Section 3)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.stopwait import (
    AckFrame,
    DataFrame,
    LossyChannel,
    StopAndWaitReceiver,
    StopAndWaitSender,
)


class TestFrames:
    def test_data_frame_bit_validated(self):
        with pytest.raises(ValueError):
            DataFrame(bit=2, payload="x")

    def test_ack_frame_bit_validated(self):
        with pytest.raises(ValueError):
            AckFrame(bit=-1)


class TestSender:
    def test_offer_transmits_when_idle(self):
        sender = StopAndWaitSender()
        frame = sender.offer("a")
        assert frame is not None and frame.bit == 0 and frame.payload == "a"

    def test_second_offer_queues_behind_outstanding(self):
        sender = StopAndWaitSender()
        sender.offer("a")
        assert sender.offer("b") is None

    def test_matching_ack_releases_next(self):
        sender = StopAndWaitSender()
        sender.offer("a")
        sender.offer("b")
        frame = sender.on_ack(AckFrame(0))
        assert frame is not None and frame.payload == "b" and frame.bit == 1

    def test_stale_ack_ignored(self):
        sender = StopAndWaitSender()
        sender.offer("a")
        assert sender.on_ack(AckFrame(1)) is None
        assert sender.in_flight is not None

    def test_ack_with_nothing_outstanding_ignored(self):
        sender = StopAndWaitSender()
        assert sender.on_ack(AckFrame(0)) is None

    def test_timeout_retransmits_same_frame(self):
        sender = StopAndWaitSender()
        first = sender.offer("a")
        assert sender.on_timeout() is first

    def test_timeout_when_idle_is_none(self):
        assert StopAndWaitSender().on_timeout() is None

    def test_bit_alternates(self):
        sender = StopAndWaitSender()
        bits = []
        for payload in "abcd":
            frame = sender.offer(payload) or sender.on_ack(AckFrame(bits[-1]))
            bits.append(frame.bit)
            sender.on_ack(AckFrame(frame.bit))
        assert bits == [0, 1, 0, 1]

    def test_idle_after_final_ack(self):
        sender = StopAndWaitSender()
        frame = sender.offer("a")
        sender.on_ack(AckFrame(frame.bit))
        assert sender.idle


class TestReceiver:
    def test_delivers_expected_bit(self):
        receiver = StopAndWaitReceiver()
        ack = receiver.on_frame(DataFrame(0, "a"))
        assert receiver.delivered == ["a"] and ack.bit == 0

    def test_duplicate_reacked_not_redelivered(self):
        receiver = StopAndWaitReceiver()
        receiver.on_frame(DataFrame(0, "a"))
        ack = receiver.on_frame(DataFrame(0, "a"))
        assert receiver.delivered == ["a"] and ack.bit == 0

    def test_alternation(self):
        receiver = StopAndWaitReceiver()
        receiver.on_frame(DataFrame(0, "a"))
        receiver.on_frame(DataFrame(1, "b"))
        receiver.on_frame(DataFrame(0, "c"))
        assert receiver.delivered == ["a", "b", "c"]


class TestLossyChannel:
    def test_reliable_channel_passthrough(self):
        channel = LossyChannel(loss=0.0, duplicate=0.0)
        assert channel.run(list(range(10))) == list(range(10))

    def test_lossy_channel_still_fifo_exactly_once(self):
        channel = LossyChannel(loss=0.3, duplicate=0.2, seed=3)
        payloads = list(range(50))
        assert channel.run(payloads) == payloads

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            LossyChannel(loss=1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        payloads=st.lists(st.integers(), max_size=30),
        loss=st.floats(0.0, 0.6),
        duplicate=st.floats(0.0, 0.5),
        seed=st.integers(0, 1000),
    )
    def test_exactly_once_in_order_under_adversity(self, payloads, loss, duplicate, seed):
        """The paper's channel properties: lossless (exactly once) and FIFO,
        implemented over a lossy, duplicating link."""
        channel = LossyChannel(loss=loss, duplicate=duplicate, seed=seed)
        assert channel.run(payloads) == payloads


class _CountingRandom(random.Random):
    """A seeded generator that counts how many draws it has served."""

    def __init__(self, seed: int) -> None:
        super().__init__(seed)
        self.draws = 0

    def random(self) -> float:
        self.draws += 1
        return super().random()


class _AlwaysLose:
    """rng stub whose every draw falls below any positive loss probability."""

    def random(self) -> float:
        return 0.0


class TestLossyChannelEdgeCases:
    def test_empty_payloads_deliver_nothing(self):
        channel = LossyChannel(loss=0.5, duplicate=0.5, seed=1)
        assert channel.run([]) == []

    def test_invalid_duplicate_probability_rejected(self):
        with pytest.raises(ValueError):
            LossyChannel(duplicate=1.0)

    def test_injected_rng_is_shared_across_channels(self):
        # One seeded stream driving several channels is the harness shape:
        # both channels must consume (and advance) the same generator.
        rng = _CountingRandom(42)
        first = LossyChannel(loss=0.3, duplicate=0.2, rng=rng)
        second = LossyChannel(loss=0.3, duplicate=0.2, rng=rng)
        assert first.rng is second.rng is rng
        assert first.run(list(range(20))) == list(range(20))
        after_first = rng.draws
        assert after_first > 0
        assert second.run(list(range(20))) == list(range(20))
        assert rng.draws > after_first

    def test_seed_and_equivalent_rng_behave_identically(self):
        # seed=N is sugar for rng=random.Random(N): the two channels must
        # make exactly the same loss/duplication decisions.
        seeded = LossyChannel(loss=0.4, duplicate=0.3, seed=9)
        injected = _CountingRandom(9)
        explicit = LossyChannel(loss=0.4, duplicate=0.3, rng=injected)
        payloads = list(range(30))
        assert seeded.run(payloads) == explicit.run(payloads)
        assert seeded.rng.random() == injected.random()

    def test_total_loss_raises_instead_of_spinning(self):
        channel = LossyChannel(loss=0.5, duplicate=0.0, rng=_AlwaysLose())
        with pytest.raises(RuntimeError, match="did not converge"):
            channel.run([1], max_steps=50)

    def test_duplicate_storm_still_exactly_once(self):
        channel = LossyChannel(loss=0.0, duplicate=0.9, seed=5)
        payloads = list(range(10))
        assert channel.run(payloads) == payloads


class TestEndpointInterleavings:
    def test_duplicate_data_frame_yields_stale_ack_that_cannot_skip(self):
        # A duplicated data frame produces a second ack for the same bit;
        # once the sender has moved on, that ack must not release frame 2's
        # slot early (which would let a lost frame 2 go unretransmitted).
        sender = StopAndWaitSender()
        receiver = StopAndWaitReceiver()
        first = sender.offer("a")
        assert sender.offer("b") is None
        ack = receiver.on_frame(first)
        duplicate_ack = receiver.on_frame(first)
        second = sender.on_ack(ack)
        assert second is not None and second.payload == "b" and second.bit == 1
        assert sender.on_ack(duplicate_ack) is None
        assert sender.in_flight is second
        assert sender.on_ack(receiver.on_frame(second)) is None
        assert sender.idle
        assert receiver.delivered == ["a", "b"]

    def test_retransmission_after_ack_loss_is_idempotent(self):
        # The ack was lost: the sender times out and retransmits; the
        # receiver re-acks without re-delivering, and the late ack drains
        # the retransmission.
        sender = StopAndWaitSender()
        receiver = StopAndWaitReceiver()
        frame = sender.offer("a")
        receiver.on_frame(frame)  # first ack lost in transit
        retransmit = sender.on_timeout()
        assert retransmit is frame
        ack = receiver.on_frame(retransmit)
        assert receiver.delivered == ["a"]
        assert sender.on_ack(ack) is None
        assert sender.idle

    def test_queue_drains_fifo_one_frame_at_a_time(self):
        sender = StopAndWaitSender()
        receiver = StopAndWaitReceiver()
        frame = sender.offer("a")
        for payload in "bcd":
            assert sender.offer(payload) is None
        order = []
        while frame is not None:
            assert sender.in_flight is frame
            order.append(frame.payload)
            frame = sender.on_ack(receiver.on_frame(frame))
        assert order == ["a", "b", "c", "d"]
        assert receiver.delivered == order
        assert sender.idle and sender.in_flight is None
