"""Unit and property tests for the alternating-bit FIFO link (Section 3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.stopwait import (
    AckFrame,
    DataFrame,
    LossyChannel,
    StopAndWaitReceiver,
    StopAndWaitSender,
)


class TestFrames:
    def test_data_frame_bit_validated(self):
        with pytest.raises(ValueError):
            DataFrame(bit=2, payload="x")

    def test_ack_frame_bit_validated(self):
        with pytest.raises(ValueError):
            AckFrame(bit=-1)


class TestSender:
    def test_offer_transmits_when_idle(self):
        sender = StopAndWaitSender()
        frame = sender.offer("a")
        assert frame is not None and frame.bit == 0 and frame.payload == "a"

    def test_second_offer_queues_behind_outstanding(self):
        sender = StopAndWaitSender()
        sender.offer("a")
        assert sender.offer("b") is None

    def test_matching_ack_releases_next(self):
        sender = StopAndWaitSender()
        sender.offer("a")
        sender.offer("b")
        frame = sender.on_ack(AckFrame(0))
        assert frame is not None and frame.payload == "b" and frame.bit == 1

    def test_stale_ack_ignored(self):
        sender = StopAndWaitSender()
        sender.offer("a")
        assert sender.on_ack(AckFrame(1)) is None
        assert sender.in_flight is not None

    def test_ack_with_nothing_outstanding_ignored(self):
        sender = StopAndWaitSender()
        assert sender.on_ack(AckFrame(0)) is None

    def test_timeout_retransmits_same_frame(self):
        sender = StopAndWaitSender()
        first = sender.offer("a")
        assert sender.on_timeout() is first

    def test_timeout_when_idle_is_none(self):
        assert StopAndWaitSender().on_timeout() is None

    def test_bit_alternates(self):
        sender = StopAndWaitSender()
        bits = []
        for payload in "abcd":
            frame = sender.offer(payload) or sender.on_ack(AckFrame(bits[-1]))
            bits.append(frame.bit)
            sender.on_ack(AckFrame(frame.bit))
        assert bits == [0, 1, 0, 1]

    def test_idle_after_final_ack(self):
        sender = StopAndWaitSender()
        frame = sender.offer("a")
        sender.on_ack(AckFrame(frame.bit))
        assert sender.idle


class TestReceiver:
    def test_delivers_expected_bit(self):
        receiver = StopAndWaitReceiver()
        ack = receiver.on_frame(DataFrame(0, "a"))
        assert receiver.delivered == ["a"] and ack.bit == 0

    def test_duplicate_reacked_not_redelivered(self):
        receiver = StopAndWaitReceiver()
        receiver.on_frame(DataFrame(0, "a"))
        ack = receiver.on_frame(DataFrame(0, "a"))
        assert receiver.delivered == ["a"] and ack.bit == 0

    def test_alternation(self):
        receiver = StopAndWaitReceiver()
        receiver.on_frame(DataFrame(0, "a"))
        receiver.on_frame(DataFrame(1, "b"))
        receiver.on_frame(DataFrame(0, "c"))
        assert receiver.delivered == ["a", "b", "c"]


class TestLossyChannel:
    def test_reliable_channel_passthrough(self):
        channel = LossyChannel(loss=0.0, duplicate=0.0)
        assert channel.run(list(range(10))) == list(range(10))

    def test_lossy_channel_still_fifo_exactly_once(self):
        channel = LossyChannel(loss=0.3, duplicate=0.2, seed=3)
        payloads = list(range(50))
        assert channel.run(payloads) == payloads

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            LossyChannel(loss=1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        payloads=st.lists(st.integers(), max_size=30),
        loss=st.floats(0.0, 0.6),
        duplicate=st.floats(0.0, 0.5),
        seed=st.integers(0, 1000),
    )
    def test_exactly_once_in_order_under_adversity(self, payloads, loss, duplicate, seed):
        """The paper's channel properties: lossless (exactly once) and FIFO,
        implemented over a lossy, duplicating link."""
        channel = LossyChannel(loss=loss, duplicate=duplicate, seed=seed)
        assert channel.run(payloads) == payloads
