"""WIRE5xx wire-format conformance: codec tables vs message schemas."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

SCHEMAS = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Commit:  # lint: allow[schema]
        op: object
        version: int
        faulty: tuple
"""


def write(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def rules_of(result) -> set[str]:
    return {f.rule for f in result.findings}


def make_tree(tmp_path: Path, codec: str) -> Path:
    write(tmp_path, "core/messages.py", SCHEMAS)
    write(tmp_path, "codec.py", codec)
    return tmp_path


CONSISTENT = """
    import json

    from core.messages import Commit

    WIRE_VERSION = 1
    COMPACT_WIRE_VERSION = 2

    def _version_in(value):
        return int(value)

    _ENCODERS = {  # lint: allow[schema]
        Commit: lambda m: {"op": m.op, "version": m.version, "faulty": m.faulty},
    }

    _DECODERS = {
        "Commit": lambda d: Commit(
            op=d["op"], version=_version_in(d["version"]), faulty=d["fault" "y"]
        ),
    }

    _COMPACT_ENCODERS = {  # lint: allow[schema]
        Commit: (1, lambda m: b""),
    }

    _COMPACT_DECODERS = {
        1: lambda payload: None,
    }

    _CAT_CODES = {"join": 1, "leave": 2}
    _CAT_NAMES = {1: "join", 2: "leave"}

    def decode(raw):
        frame = json.loads(raw)
        if frame.get("v") != WIRE_VERSION:
            raise ValueError("wire version mismatch")
        return _DECODERS[frame["t"]](frame["body"])

    def decode_compact(raw):
        version = raw[0]
        if version != COMPACT_WIRE_VERSION:
            raise ValueError("wire version mismatch")
        return _COMPACT_DECODERS[raw[1]](raw[2:])
"""


class TestConsistentCodec:
    def test_consistent_tables_are_clean(self, tmp_path: Path) -> None:
        # The string-concat trick in the decoder keeps the source free of a
        # literal "fault" typo while still reading the "faulty" key.
        make_tree(tmp_path, CONSISTENT)
        wire = {r for r in rules_of(run_lint(tmp_path)) if r.startswith("WIRE")}
        assert wire == set()

    def test_real_codec_is_clean(self) -> None:
        src = Path(__file__).parent.parent / "src" / "repro"
        result = run_lint(src)
        wire = [f for f in result.findings if f.rule.startswith("WIRE")]
        assert wire == []


class TestEncoderSchemaDrift:
    def test_omitted_field_fires_wire501(self, tmp_path: Path) -> None:
        make_tree(
            tmp_path,
            """
            from core.messages import Commit

            _ENCODERS = {  # lint: allow[schema]
                Commit: lambda m: {"op": m.op, "version": m.version},
            }
            """,
        )
        result = run_lint(tmp_path)
        wire = [f for f in result.findings if f.rule == "WIRE501"]
        assert len(wire) == 1
        assert "faulty" in wire[0].message

    def test_phantom_key_fires_wire501(self, tmp_path: Path) -> None:
        make_tree(
            tmp_path,
            """
            from core.messages import Commit

            _ENCODERS = {  # lint: allow[schema]
                Commit: lambda m: {
                    "op": m.op, "version": m.version, "faulty": m.faulty,
                    "ghost": 1,
                },
            }
            """,
        )
        result = run_lint(tmp_path)
        wire = [f for f in result.findings if f.rule == "WIRE501"]
        assert len(wire) == 1
        assert "ghost" in wire[0].message

    def test_unknown_type_is_skipped(self, tmp_path: Path) -> None:
        """Encoders for types without a schema (e.g. detector-internal
        pings living elsewhere) are not guessed at."""
        make_tree(
            tmp_path,
            """
            from elsewhere import Ping

            _ENCODERS = {  # lint: allow[schema]
                Ping: lambda m: {"whatever": 1},
            }
            """,
        )
        assert "WIRE501" not in rules_of(run_lint(tmp_path))


class TestDecoderDrift:
    def test_wrong_constructor_fires_wire502(self, tmp_path: Path) -> None:
        make_tree(
            tmp_path,
            """
            from core.messages import Commit, Abort

            _DECODERS = {
                "Commit": lambda d: Abort(version=d["version"]),
            }
            """,
        )
        result = run_lint(tmp_path)
        wire = [f for f in result.findings if f.rule == "WIRE502"]
        assert len(wire) == 1
        assert "Abort" in wire[0].message

    def test_bogus_keyword_fires_wire502(self, tmp_path: Path) -> None:
        make_tree(
            tmp_path,
            """
            from core.messages import Commit

            _DECODERS = {
                "Commit": lambda d: Commit(
                    op=d["op"], version=d["version"], faulty=d["faulty"],
                    extra=1,
                ),
            }
            """,
        )
        result = run_lint(tmp_path)
        assert any(
            f.rule == "WIRE502" and "extra" in f.message for f in result.findings
        )


class TestFixtures:
    def test_each_wire_fixture_fires_its_rule(self) -> None:
        for rule_id in ("WIRE501", "WIRE502", "WIRE503", "WIRE504", "WIRE505"):
            result = run_lint(FIXTURES / rule_id.lower())
            assert rule_id in rules_of(result), rule_id
            assert not result.ok
