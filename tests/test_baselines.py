"""Integration tests: baseline protocols and their comparison to GMP."""

from __future__ import annotations

import pytest

from repro.analysis import breakdown, two_phase_update_messages
from repro.baselines import (
    AbcastMember,
    OnePhaseMember,
    SymmetricMember,
    TwoPhaseReconfigMember,
)
from repro.core.service import MembershipCluster
from repro.properties import check_gmp

from conftest import make_cluster, names


def run_single_failure(member_class, n=10, seed=1):
    kwargs = {} if member_class is None else {"member_class": member_class}
    cluster = make_cluster(n, seed=seed, **kwargs)
    cluster.crash(f"p{n // 2}", at=5.0)
    cluster.settle()
    return cluster


class TestBenignEquivalence:
    """On benign single-failure runs every baseline reaches the same view."""

    @pytest.mark.parametrize(
        "member_class", [None, SymmetricMember, AbcastMember, OnePhaseMember]
    )
    def test_survivor_views_agree(self, member_class):
        cluster = run_single_failure(member_class)
        view = names(cluster.agreed_view())
        assert "p5" not in view and len(view) == 9

    @pytest.mark.parametrize(
        "member_class", [None, SymmetricMember, AbcastMember]
    )
    def test_gmp_safety_on_benign_run(self, member_class):
        cluster = run_single_failure(member_class)
        report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
        assert report.ok


class TestMessageCosts:
    def test_symmetric_costs_an_order_of_magnitude_more(self):
        ours = breakdown(run_single_failure(None).trace).algorithm
        theirs = breakdown(run_single_failure(SymmetricMember).trace).algorithm
        assert ours == two_phase_update_messages(10)
        assert theirs >= 5 * ours  # "order of magnitude more" (Section 1)

    def test_abcast_costs_quadratically_more(self):
        ours = breakdown(run_single_failure(None).trace).algorithm
        theirs = breakdown(run_single_failure(AbcastMember).trace).algorithm
        assert theirs > 3 * ours

    def test_symmetric_cost_scales_quadratically(self):
        small = breakdown(run_single_failure(SymmetricMember, n=6).trace).algorithm
        large = breakdown(run_single_failure(SymmetricMember, n=12).trace).algorithm
        # doubling n should roughly quadruple the cost
        assert large > 3 * small

    def test_gmp_cost_scales_linearly(self):
        small = breakdown(run_single_failure(None, n=6).trace).algorithm
        large = breakdown(run_single_failure(None, n=12).trace).algorithm
        assert large < 3 * small


class TestStrawmen:
    def test_one_phase_cheapest_but_unsound(self):
        # Cheapest on benign runs...
        ours = breakdown(run_single_failure(None).trace).algorithm
        theirs = breakdown(run_single_failure(OnePhaseMember).trace).algorithm
        assert theirs < ours
        # ...but unsound under the Claim 7.1 schedule (see test_scenarios).

    def test_two_phase_reconfig_matches_gmp_on_benign_runs(self):
        cluster = make_cluster(6, seed=2, member_class=TwoPhaseReconfigMember)
        cluster.crash("p0", at=5.0)
        cluster.settle()
        report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
        assert report.ok
        assert names(cluster.agreed_view()) == ["p1", "p2", "p3", "p4", "p5"]

    def test_two_phase_reconfig_saves_a_phase(self):
        def reconfig_cost(member_class):
            kwargs = {} if member_class is None else {"member_class": member_class}
            cluster = make_cluster(8, seed=3, **kwargs)
            cluster.crash("p0", at=5.0)
            cluster.settle()
            return breakdown(cluster.trace).reconfiguration

        assert reconfig_cost(TwoPhaseReconfigMember) < reconfig_cost(None)


class TestBaselineConstraints:
    def test_baselines_require_initial_view(self):
        cluster = MembershipCluster.of_size(3, member_class=SymmetricMember)
        with pytest.raises(ValueError):
            cluster.join("x")

    def test_symmetric_removal_needs_unanimous_accusation(self):
        # With only one accuser and no real crash, nothing is removed:
        # the symmetric protocol waits for everyone it trusts to accuse.
        cluster = make_cluster(5, seed=4, detector="scripted", member_class=SymmetricMember)
        cluster.suspect("p1", "p4", at=5.0)
        cluster.run(until=50.0)
        # accusation floods make everyone accuse, so p4 *is* removed —
        # gossip in the symmetric protocol is total.
        cluster.settle()
        assert "p4" not in names(cluster.agreed_view())

    def test_abcast_sequencer_failover(self):
        cluster = make_cluster(8, seed=5, member_class=AbcastMember)
        cluster.crash("p0", at=5.0)  # the sequencer itself
        cluster.settle()
        view = names(cluster.agreed_view())
        assert "p0" not in view and len(view) == 7
