"""Integration tests: the paper's named scenarios (Table 1, Figures 3/4/11,
Claims 7.1/7.2)."""

from __future__ import annotations

import pytest

from repro.baselines import OnePhaseMember, TwoPhaseReconfigMember
from repro.model.events import EventKind
from repro.properties import check_gmp
from repro.workloads.scenarios import (
    TABLE1_EXPECTED,
    initiators_of,
    run_claim71,
    run_figure3,
    run_figure4,
    run_figure11,
    run_table1_row,
)

from conftest import assert_gmp, names


class TestTable1:
    @pytest.mark.parametrize("row", TABLE1_EXPECTED, ids=["row1", "row2", "row3", "row4"])
    def test_initiation_matrix(self, row):
        cluster = run_table1_row(row)
        initiators = initiators_of(cluster)
        assert ("p" in initiators) == row.p_initiates
        assert ("q" in initiators) == (row.q_initiates in ("yes", "eventually"))
        assert_gmp(cluster, liveness=False)

    def test_row2_q_initiates_later_than_row4(self):
        # "Eventually": in row 2 q waits for p before timing out on it.
        def initiation_time(row):
            cluster = run_table1_row(row)
            for event in cluster.trace.events_of_kind(EventKind.INTERNAL):
                if (
                    event.proc.name == "q"
                    and event.detail.startswith("initiating reconfiguration")
                ):
                    return event.time
            raise AssertionError("q never initiated")

        assert initiation_time(TABLE1_EXPECTED[1]) > initiation_time(TABLE1_EXPECTED[3])

    def test_all_rows_converge_on_survivors(self):
        for row in TABLE1_EXPECTED:
            cluster = run_table1_row(row)
            view = names(cluster.agreed_view())
            assert "m" not in view
            if not row.p_actually_up:
                assert "p" not in view


class TestFigure3:
    @pytest.mark.parametrize("reached", [1, 2, 3])
    def test_partial_commit_always_stabilised(self, reached):
        cluster = run_figure3(commit_sends_before_crash=reached)
        assert_gmp(cluster)

    def test_final_views_identical_regardless_of_crash_point(self):
        finals = set()
        for reached in (1, 2, 3):
            cluster = run_figure3(commit_sends_before_crash=reached)
            finals.add(tuple(names(cluster.agreed_view())))
        assert finals == {("p1", "p2", "p3")}


class TestFigure4:
    def test_both_initiate_but_one_view_sequence_results(self):
        cluster = run_figure4()
        assert initiators_of(cluster) == {"q", "r"}
        assert_gmp(cluster, liveness=False)

    def test_spuriously_suspected_initiator_is_excluded(self):
        # r believed q faulty; GMP-5 demands q or r leave — q, the wrongly
        # accused, ends up excluded because r's belief is gossiped.
        cluster = run_figure4()
        view = names(cluster.agreed_view())
        assert "m" not in view
        assert "q" not in view or "r" not in view


class TestFigure11:
    def test_three_phase_resolves_two_proposals_stably(self):
        cluster = run_figure11()
        assert_gmp(cluster)
        # The later reconfigurer faced two candidate proposals...
        determinations = [
            e.detail
            for e in cluster.trace.events_of_kind(EventKind.INTERNAL)
            if e.proc.name == "e" and e.detail.startswith("determined")
        ]
        assert determinations and "candidates=2" in determinations[0]
        # ...and propagated the junior proposer's (p's) operation.
        survivor = cluster.live_members()[0]
        assert str(survivor.state.seq[0]) == "remove(m)"

    def test_witness_of_invisible_commit_stays_consistent(self):
        cluster = run_figure11()
        # b installed version 1 from p's truncated commit broadcast before
        # being excluded; its version 1 must equal everyone else's.
        installs = {}
        for event in cluster.trace.events_of_kind(EventKind.INSTALL):
            if event.version == 1:
                installs[event.proc.name] = event.view
        assert len(set(installs.values())) == 1

    def test_two_phase_strawman_diverges(self):
        cluster = run_figure11(member_class=TwoPhaseReconfigMember, strawman=True)
        report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
        assert report.violated("GMP-3")

    def test_three_phase_on_strawman_schedule_stays_safe(self):
        cluster = run_figure11(strawman=False)
        assert_gmp(cluster)


class TestClaim71:
    def test_one_phase_violates_gmp3(self):
        cluster = run_claim71(member_class=OnePhaseMember)
        report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
        assert report.violated("GMP-3")

    def test_real_protocol_stays_safe_on_same_schedule(self):
        cluster = run_claim71()
        report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
        assert report.ok
        # Safe here means *blocked*: no view was installed because neither
        # side can assemble a majority while ignoring the other.
        assert all(version == 0 for version, _ in cluster.views().values())
