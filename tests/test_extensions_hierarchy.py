"""Tests for the hierarchical client-group extension (§8)."""

from __future__ import annotations

import pytest

from repro.extensions import ClientDirectory
from repro.ids import pid

from conftest import assert_gmp, make_cluster


def cluster_with_directories(n: int = 4, **kwargs):
    cluster = make_cluster(n, **kwargs)
    directories = {
        p: ClientDirectory(member) for p, member in cluster.members.items()
    }
    return cluster, directories


def coordinator_directory(cluster, directories):
    mgr = cluster.live_members()[0].state.mgr
    return directories[mgr]


class TestClientAdmission:
    def test_admit_replicates_to_all_members(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        dirs[pid("p0")].admit(pid("client-b"))
        cluster.settle()
        for p, directory in dirs.items():
            assert list(directory.view.clients) == [pid("client-a"), pid("client-b")]
            assert directory.view.version == 2

    def test_clients_are_not_group_members(self):
        # The whole point of the hierarchy: clients appear in the managed
        # view but never in the membership view.
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        cluster.settle()
        assert pid("client-a") in dirs[pid("p1")].view
        assert pid("client-a") not in cluster.agreed_view()
        assert_gmp(cluster)

    def test_duplicate_admission_rejected(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        assert dirs[pid("p0")].admit(pid("client-a"))
        assert not dirs[pid("p0")].admit(pid("client-a"))

    def test_non_coordinator_cannot_write(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        with pytest.raises(RuntimeError):
            dirs[pid("p2")].admit(pid("client-a"))


class TestClientExpulsion:
    def test_expel_models_end_of_service(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        dirs[pid("p0")].admit(pid("client-b"))
        cluster.settle()
        dirs[pid("p0")].expel(pid("client-a"))
        cluster.settle()
        for directory in dirs.values():
            assert pid("client-a") not in directory.view
            assert pid("client-b") in directory.view

    def test_member_reported_client_failure_is_expelled(self):
        # Any member monitoring a client can report it; the coordinator
        # serialises the expulsion.
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        cluster.settle()
        dirs[pid("p2")].report_client_failure(pid("client-a"))
        cluster.settle()
        for directory in dirs.values():
            assert pid("client-a") not in directory.view

    def test_expelling_unknown_client_is_a_noop(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        assert not dirs[pid("p0")].expel(pid("ghost"))


class TestFailover:
    def test_registry_survives_coordinator_failure(self):
        cluster, dirs = cluster_with_directories(5)
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        dirs[pid("p0")].admit(pid("client-b"))
        cluster.settle()
        cluster.crash("p0", at=cluster.scheduler.now + 1.0)
        cluster.settle()
        # p1 took over the membership AND the client registry.
        assert_gmp(cluster, liveness=False)
        new_dir = coordinator_directory(cluster, dirs)
        assert new_dir is dirs[pid("p1")]
        assert set(new_dir.view.clients) == {pid("client-a"), pid("client-b")}
        # And it can keep writing.
        new_dir.admit(pid("client-c"))
        cluster.settle()
        for p, member in cluster.members.items():
            if member.is_member:
                assert pid("client-c") in dirs[p].view

    def test_failover_adopts_newest_surviving_state(self):
        # The old coordinator's very last update reached only some members;
        # reconciliation must adopt the newest surviving copy.
        cluster, dirs = cluster_with_directories(5)
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        cluster.settle()
        # Partition delays the update to most members, then crash p0: only
        # p1 saw the second admission.
        cluster.partition(["p0"], ["p2", "p3", "p4"])
        dirs[pid("p0")].admit(pid("client-b"))
        cluster.run(until=cluster.scheduler.now + 5.0)
        assert pid("client-b") in dirs[pid("p1")].view
        assert pid("client-b") not in dirs[pid("p3")].view
        cluster.heal()
        cluster.crash("p0", at=cluster.scheduler.now + 1.0)
        cluster.settle()
        for p, member in cluster.members.items():
            if member.is_member:
                assert pid("client-b") in dirs[p].view

    def test_membership_properties_untouched_by_layer(self):
        cluster, dirs = cluster_with_directories(5)
        cluster.run(until=5.0)
        for i in range(4):
            dirs[pid("p0")].admit(pid(f"c{i}"))
        cluster.crash("p4", at=30.0)
        cluster.crash("p0", at=60.0)
        cluster.settle()
        assert_gmp(cluster)
        surviving = coordinator_directory(cluster, dirs)
        assert len(surviving.view.clients) == 4


class TestLateMemberCatchUp:
    def test_gap_triggers_resync(self):
        cluster, dirs = cluster_with_directories(4)
        cluster.run(until=5.0)
        # Hold p3's traffic while two updates happen, then heal: p3 sees a
        # version gap and resynchronises.
        cluster.partition(["p3"], ["p0"])
        dirs[pid("p0")].admit(pid("client-a"))
        dirs[pid("p0")].admit(pid("client-b"))
        cluster.run(until=cluster.scheduler.now + 10.0)
        cluster.heal()
        dirs[pid("p0")].admit(pid("client-c"))
        cluster.settle()
        assert set(dirs[pid("p3")].view.clients) == {
            pid("client-a"),
            pid("client-b"),
            pid("client-c"),
        }
