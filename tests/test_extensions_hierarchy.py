"""Tests for the hierarchical client-group extension (§8)."""

from __future__ import annotations

import pytest

from repro.extensions import ClientDirectory
from repro.extensions.hierarchy import ClientOp, ClientState, ClientUpdate
from repro.ids import pid

from conftest import assert_gmp, make_cluster


def cluster_with_directories(n: int = 4, **kwargs):
    cluster = make_cluster(n, **kwargs)
    directories = {
        p: ClientDirectory(member) for p, member in cluster.members.items()
    }
    return cluster, directories


def coordinator_directory(cluster, directories):
    mgr = cluster.live_members()[0].state.mgr
    return directories[mgr]


class TestClientAdmission:
    def test_admit_replicates_to_all_members(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        dirs[pid("p0")].admit(pid("client-b"))
        cluster.settle()
        for p, directory in dirs.items():
            assert list(directory.view.clients) == [pid("client-a"), pid("client-b")]
            assert directory.view.version == 2

    def test_clients_are_not_group_members(self):
        # The whole point of the hierarchy: clients appear in the managed
        # view but never in the membership view.
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        cluster.settle()
        assert pid("client-a") in dirs[pid("p1")].view
        assert pid("client-a") not in cluster.agreed_view()
        assert_gmp(cluster)

    def test_duplicate_admission_rejected(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        assert dirs[pid("p0")].admit(pid("client-a"))
        assert not dirs[pid("p0")].admit(pid("client-a"))

    def test_non_coordinator_cannot_write(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        with pytest.raises(RuntimeError):
            dirs[pid("p2")].admit(pid("client-a"))


class TestClientExpulsion:
    def test_expel_models_end_of_service(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        dirs[pid("p0")].admit(pid("client-b"))
        cluster.settle()
        dirs[pid("p0")].expel(pid("client-a"))
        cluster.settle()
        for directory in dirs.values():
            assert pid("client-a") not in directory.view
            assert pid("client-b") in directory.view

    def test_member_reported_client_failure_is_expelled(self):
        # Any member monitoring a client can report it; the coordinator
        # serialises the expulsion.
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        cluster.settle()
        dirs[pid("p2")].report_client_failure(pid("client-a"))
        cluster.settle()
        for directory in dirs.values():
            assert pid("client-a") not in directory.view

    def test_expelling_unknown_client_is_a_noop(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        assert not dirs[pid("p0")].expel(pid("ghost"))


class TestFailover:
    def test_registry_survives_coordinator_failure(self):
        cluster, dirs = cluster_with_directories(5)
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        dirs[pid("p0")].admit(pid("client-b"))
        cluster.settle()
        cluster.crash("p0", at=cluster.scheduler.now + 1.0)
        cluster.settle()
        # p1 took over the membership AND the client registry.
        assert_gmp(cluster, liveness=False)
        new_dir = coordinator_directory(cluster, dirs)
        assert new_dir is dirs[pid("p1")]
        assert set(new_dir.view.clients) == {pid("client-a"), pid("client-b")}
        # And it can keep writing.
        new_dir.admit(pid("client-c"))
        cluster.settle()
        for p, member in cluster.members.items():
            if member.is_member:
                assert pid("client-c") in dirs[p].view

    def test_failover_adopts_newest_surviving_state(self):
        # The old coordinator's very last update reached only some members;
        # reconciliation must adopt the newest surviving copy.
        cluster, dirs = cluster_with_directories(5)
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        cluster.settle()
        # Partition delays the update to most members, then crash p0: only
        # p1 saw the second admission.
        cluster.partition(["p0"], ["p2", "p3", "p4"])
        dirs[pid("p0")].admit(pid("client-b"))
        cluster.run(until=cluster.scheduler.now + 5.0)
        assert pid("client-b") in dirs[pid("p1")].view
        assert pid("client-b") not in dirs[pid("p3")].view
        cluster.heal()
        cluster.crash("p0", at=cluster.scheduler.now + 1.0)
        cluster.settle()
        for p, member in cluster.members.items():
            if member.is_member:
                assert pid("client-b") in dirs[p].view

    def test_membership_properties_untouched_by_layer(self):
        cluster, dirs = cluster_with_directories(5)
        cluster.run(until=5.0)
        for i in range(4):
            dirs[pid("p0")].admit(pid(f"c{i}"))
        cluster.crash("p4", at=30.0)
        cluster.crash("p0", at=60.0)
        cluster.settle()
        assert_gmp(cluster)
        surviving = coordinator_directory(cluster, dirs)
        assert len(surviving.view.clients) == 4


class TestSingleWriterFiltering:
    """Only the current coordinator's updates (and snapshots) are honoured."""

    def test_client_op_kind_validated(self):
        with pytest.raises(ValueError):
            ClientOp("promote", pid("client-a"))

    def test_update_from_non_coordinator_ignored(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        directory = dirs[pid("p1")]
        before = directory.view
        directory._on_update(
            pid("p2"), ClientUpdate(ClientOp("admit", pid("rogue")), version=1)
        )
        assert directory.view == before

    def test_duplicate_version_update_ignored(self):
        # A re-delivered v1 update carrying a different op must not apply:
        # the version number, not the payload, decides freshness.
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        cluster.settle()
        directory = dirs[pid("p1")]
        mgr = directory.member.state.mgr
        directory._on_update(
            mgr, ClientUpdate(ClientOp("admit", pid("client-z")), version=1)
        )
        assert pid("client-z") not in directory.view
        assert directory.view.version == 1

    def test_stale_snapshot_ignored(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        dirs[pid("p0")].admit(pid("client-a"))
        cluster.settle()
        directory = dirs[pid("p1")]
        mgr = directory.member.state.mgr
        directory._on_state(mgr, ClientState(clients=(), version=0))
        assert pid("client-a") in directory.view

    def test_snapshot_from_non_coordinator_ignored(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        directory = dirs[pid("p1")]
        directory._on_state(
            pid("p3"), ClientState(clients=(pid("forged"),), version=99)
        )
        assert pid("forged") not in directory.view
        assert directory.view.version == 0

    def test_failure_report_for_unknown_client_ignored(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        dirs[pid("p2")].report_client_failure(pid("ghost"))
        cluster.settle()
        for directory in dirs.values():
            assert directory.view.version == 0


class TestSyncDeadline:
    """Reconciliation must terminate even when a respondent crashed mid-sync."""

    def test_deadline_with_no_pending_is_a_noop(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        directory = coordinator_directory(cluster, dirs)
        before = directory.view
        directory._sync_deadline(directory._sync_epoch)
        assert directory.view == before
        assert directory._sync_pending == set()

    def test_deadline_adopts_best_state_seen_so_far(self):
        # A straggler never answers the sync request: the deadline fires,
        # reconciliation completes from the responses already in hand, and
        # the rebroadcast converges the rest of the group.
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        directory = coordinator_directory(cluster, dirs)
        directory._sync_pending = {pid("never-answers")}
        directory._sync_best = ClientState(clients=(pid("client-x"),), version=7)
        directory._sync_deadline(directory._sync_epoch)
        assert directory._sync_pending == set()
        assert directory._sync_best is None
        assert directory.view.version == 7
        assert pid("client-x") in directory.view
        cluster.settle()
        for other in dirs.values():
            assert pid("client-x") in other.view

    def test_partial_responses_keep_waiting_until_last_or_deadline(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        directory = coordinator_directory(cluster, dirs)
        directory._sync_pending = {pid("m1"), pid("m2")}
        directory._sync_best = ClientState(clients=(), version=0)
        directory._on_state(pid("m1"), ClientState(clients=(pid("c"),), version=3))
        # One respondent outstanding: reconciliation must not finish yet.
        assert directory._sync_pending == {pid("m2")}
        assert directory.view.version == 0
        directory._on_state(pid("m2"), ClientState(clients=(), version=1))
        # Last response arrived: the *newest* snapshot wins, not the latest.
        assert directory._sync_pending == set()
        assert directory.view.version == 3
        assert pid("c") in directory.view


class TestLateMemberCatchUp:
    def test_gap_triggers_resync(self):
        cluster, dirs = cluster_with_directories(4)
        cluster.run(until=5.0)
        # Hold p3's traffic while two updates happen, then heal: p3 sees a
        # version gap and resynchronises.
        cluster.partition(["p3"], ["p0"])
        dirs[pid("p0")].admit(pid("client-a"))
        dirs[pid("p0")].admit(pid("client-b"))
        cluster.run(until=cluster.scheduler.now + 10.0)
        cluster.heal()
        dirs[pid("p0")].admit(pid("client-c"))
        cluster.settle()
        assert set(dirs[pid("p3")].view.clients) == {
            pid("client-a"),
            pid("client-b"),
            pid("client-c"),
        }
