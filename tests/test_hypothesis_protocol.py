"""Property-based end-to-end tests: GMP must hold on arbitrary schedules.

Hypothesis generates whole workloads — group size, crash subsets, timings,
crash-mid-broadcast rules, joins, delay regimes — and every generated run
is checked against the full GMP specification.  This is the library's
broadest safety net: the scenarios of the paper's proofs are points in this
space; hypothesis samples the rest of it.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.service import MembershipCluster
from repro.properties import check_gmp, format_report
from repro.sim.failures import crash_after_matching_sends, payload_type_is
from repro.sim.network import FixedDelay, UniformDelay

BROADCASTS = payload_type_is("Commit", "ReconfigCommit", "Invite", "Propose")

workload = st.fixed_dictionaries(
    {
        "n": st.integers(3, 9),
        "seed": st.integers(0, 10_000),
        "delay": st.sampled_from(["fixed", "uniform", "wide"]),
        "crash_fraction": st.floats(0.0, 0.45),
        "mid_broadcast": st.booleans(),
        "mid_broadcast_after": st.integers(1, 4),
        "join": st.booleans(),
        "crash_times": st.lists(st.floats(1.0, 120.0), min_size=0, max_size=4),
    }
)


def build_cluster(params) -> MembershipCluster:
    delay = {
        "fixed": FixedDelay(1.0),
        "uniform": UniformDelay(0.5, 2.0),
        "wide": UniformDelay(0.1, 8.0),
    }[params["delay"]]
    cluster = MembershipCluster.of_size(
        params["n"], seed=params["seed"], delay_model=delay
    )
    n = params["n"]
    max_victims = max(0, min(int(n * params["crash_fraction"]), (n - 1) // 2))
    victims = [f"p{n - 1 - i}" for i in range(max_victims)]
    times = sorted(params["crash_times"])[:max_victims] or []
    for i, victim in enumerate(victims):
        when = times[i] if i < len(times) else 5.0 + 10.0 * i
        if params["mid_broadcast"] and i == 0:
            crash_after_matching_sends(
                cluster.network,
                cluster.resolve(victim),
                BROADCASTS,
                after=params["mid_broadcast_after"],
            )
            # The rule may never fire if the junior victim never broadcasts;
            # give it a backstop crash so the run still exercises failure.
            cluster.crash(victim, at=when + 60.0)
        else:
            cluster.crash(victim, at=when)
    if params["join"]:
        cluster.join("jx", at=25.0)
    cluster.start()
    return cluster


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(workload)
def test_gmp_safety_on_arbitrary_workloads(params):
    cluster = build_cluster(params)
    cluster.settle(max_events=500_000)
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
    assert report.ok, format_report(report) + "\n" + repr(params)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(4, 9),
    seed=st.integers(0, 10_000),
    spacing=st.floats(15.0, 40.0),
)
def test_liveness_under_spaced_minority_failures(n, seed, spacing):
    """Spaced failures of a strict minority always end in agreement on
    exactly the survivor set (GMP-5 plus progress)."""
    cluster = MembershipCluster.of_size(n, seed=seed)
    victims = [f"p{n - 1 - i}" for i in range((n - 1) // 2)]
    for i, victim in enumerate(victims):
        cluster.crash(victim, at=5.0 + spacing * i)
    cluster.start()
    cluster.settle(max_events=500_000)
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=True)
    assert report.ok, format_report(report)
    survivors = {m.name for m in cluster.agreed_view()}
    assert survivors == {f"p{i}" for i in range(n)} - set(victims)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(3, 7),
    seed=st.integers(0, 10_000),
    joins=st.integers(1, 3),
)
def test_joins_always_reach_agreement(n, seed, joins):
    cluster = MembershipCluster.of_size(n, seed=seed)
    for i in range(joins):
        cluster.join(f"j{i}", at=5.0 + 20.0 * i)
    cluster.start()
    cluster.settle(max_events=500_000)
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=True)
    assert report.ok, format_report(report)
    assert len(cluster.agreed_view()) == n + joins
