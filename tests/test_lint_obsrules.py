"""OBS6xx span lifecycle and obs disabled-path discipline."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def write(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def rules_of(result) -> set[str]:
    return {f.rule for f in result.findings}


# ---------------------------------------------------------------------------
# OBS601 — intra-function span lifecycle
# ---------------------------------------------------------------------------


class TestSpanLifecycle:
    def test_early_return_leak_fires(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            def f(obs, key, bad):
                obs.spans.begin("probe", key, at=0.0)
                if bad:
                    return
                obs.spans.end("probe", key, at=1.0)
            """,
        )
        result = run_lint(tmp_path)
        obs = [f for f in result.findings if f.rule == "OBS601"]
        assert len(obs) == 1
        assert "'probe'" in obs[0].message

    def test_closed_on_all_paths_is_clean(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            def f(obs, key, bad):
                obs.spans.begin("probe", key, at=0.0)
                if bad:
                    obs.spans.discard("probe", key)
                    return
                obs.spans.end("probe", key, at=1.0)
            """,
        )
        assert "OBS601" not in rules_of(run_lint(tmp_path))

    def test_exception_path_is_exempt(self, tmp_path: Path) -> None:
        """A span cut short by an exception has no duration to record —
        only normal exits need the close."""
        write(
            tmp_path,
            "mod.py",
            """
            def f(obs, key):
                obs.spans.begin("probe", key, at=0.0)
                risky()
                obs.spans.end("probe", key, at=1.0)
            """,
        )
        assert "OBS601" not in rules_of(run_lint(tmp_path))

    def test_cross_function_pair_not_flagged(self, tmp_path: Path) -> None:
        """The tcp.reconnect shape: begin in the drain loop, end in the ack
        reader.  No intra-function end exists, so OBS601 stays quiet and
        OBS602 is satisfied by the module-wide closer."""
        write(
            tmp_path,
            "mod.py",
            """
            class Net:
                def drain(self, obs, key):
                    obs.spans.begin("reconnect", key, at=0.0)

                def read_acks(self, obs, key):
                    obs.spans.end("reconnect", key, at=1.0)
            """,
        )
        result = run_lint(tmp_path)
        assert "OBS601" not in rules_of(result)
        assert "OBS602" not in rules_of(result)


# ---------------------------------------------------------------------------
# OBS602 — orphan spans
# ---------------------------------------------------------------------------


class TestOrphanSpans:
    def test_never_ended_fires(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            def f(obs, key):
                obs.spans.begin("orphan", key, at=0.0)
            """,
        )
        assert "OBS602" in rules_of(run_lint(tmp_path))

    def test_emit_only_spans_are_not_begins(self, tmp_path: Path) -> None:
        """spans.emit records a retrospective interval — it opens nothing
        and needs no closer."""
        write(
            tmp_path,
            "mod.py",
            """
            def f(obs):
                obs.spans.emit("detect.latency", 0.0, 1.0)
            """,
        )
        assert "OBS602" not in rules_of(run_lint(tmp_path))

    def test_dynamic_names_are_skipped(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            def f(obs, name, key):
                obs.spans.begin(name, key, at=0.0)
            """,
        )
        assert "OBS602" not in rules_of(run_lint(tmp_path))


# ---------------------------------------------------------------------------
# OBS603 — disabled-path discipline
# ---------------------------------------------------------------------------


class TestObsGuard:
    def test_unguarded_self_obs_fires(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            class Layer:
                def record(self, n):
                    self.obs.count_send(n)
            """,
        )
        result = run_lint(tmp_path)
        obs = [f for f in result.findings if f.rule == "OBS603"]
        assert len(obs) == 1
        assert "self.obs" in obs[0].message

    def test_direct_guard_is_clean(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            class Layer:
                def record(self, n):
                    if self.obs is not None:
                        self.obs.count_send(n)
            """,
        )
        assert "OBS603" not in rules_of(run_lint(tmp_path))

    def test_alias_guard_is_clean(self, tmp_path: Path) -> None:
        """The heartbeat idiom: alias, guard the alias, deref inside."""
        write(
            tmp_path,
            "mod.py",
            """
            class Layer:
                def record(self, n):
                    obs = self.network.obs
                    if obs is not None:
                        spans = obs.spans
                        spans.emit("e", 0.0, 1.0)
            """,
        )
        assert "OBS603" not in rules_of(run_lint(tmp_path))

    def test_early_return_guard_is_clean(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            class Layer:
                def record(self, n):
                    obs = self.network.obs
                    if obs is None or self.owner is None:
                        return
                    obs.count_send(n)
            """,
        )
        assert "OBS603" not in rules_of(run_lint(tmp_path))

    def test_guard_on_one_path_only_fires(self, tmp_path: Path) -> None:
        """Must-analysis: the proof has to hold on every path to the use."""
        write(
            tmp_path,
            "mod.py",
            """
            class Layer:
                def record(self, n, fast):
                    obs = self.network.obs
                    if fast:
                        if obs is None:
                            return
                    obs.count_send(n)
            """,
        )
        assert "OBS603" in rules_of(run_lint(tmp_path))

    def test_constructed_obs_is_proven(self, tmp_path: Path) -> None:
        """obs = Obs() cannot be None — the bench/cli construction shape."""
        write(
            tmp_path,
            "mod.py",
            """
            def run():
                from repro.obs import Obs
                obs = Obs()
                obs.record_trace(None)
            """,
        )
        assert "OBS603" not in rules_of(run_lint(tmp_path))

    def test_obs_parameter_is_contract_non_none(self, tmp_path: Path) -> None:
        """collect_metrics(self, obs): the parameter is non-None by
        contract — the caller holds the guard."""
        write(
            tmp_path,
            "mod.py",
            """
            class Layer:
                def collect_metrics(self, obs):
                    obs.gauge("x", 1)
            """,
        )
        assert "OBS603" not in rules_of(run_lint(tmp_path))

    def test_reassignment_to_none_invalidates(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            class Layer:
                def record(self, n):
                    obs = self.network.obs
                    if obs is not None:
                        obs = None
                        obs.count_send(n)
            """,
        )
        assert "OBS603" in rules_of(run_lint(tmp_path))

    def test_assert_guard_is_clean(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            class Layer:
                def record(self, n):
                    obs = self.network.obs
                    assert obs is not None
                    obs.count_send(n)
            """,
        )
        assert "OBS603" not in rules_of(run_lint(tmp_path))


# ---------------------------------------------------------------------------
# fixtures + the instrumented tree
# ---------------------------------------------------------------------------


class TestFixturesAndTree:
    def test_each_obs_fixture_fires_its_rule(self) -> None:
        for rule_id in ("OBS601", "OBS602", "OBS603"):
            result = run_lint(FIXTURES / rule_id.lower())
            assert rule_id in rules_of(result), rule_id
            assert not result.ok

    def test_instrumented_tree_is_obs_clean(self) -> None:
        """member/heartbeat/tcp/network instrumentation all follow the
        one-attribute-check discipline — the pass proves it."""
        src = Path(__file__).parent.parent / "src" / "repro"
        result = run_lint(src)
        obs = [f for f in result.findings if f.rule.startswith("OBS")]
        assert obs == []
