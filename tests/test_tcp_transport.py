"""Tests for the TCP transport: the protocol over real loopback sockets."""

from __future__ import annotations

import asyncio

import pytest

from repro.aio import AioMembershipRuntime
from repro.aio.tcp import TcpNetwork
from repro.aio.scheduler import AioScheduler
from repro.ids import pid
from repro.properties import check_gmp, format_report
from repro.sim.process import SimProcess


def run(coro):
    return asyncio.run(coro)


class Echo(SimProcess):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def on_message(self, sender, payload):
        self.received.append((sender, payload))


class TestRawTransport:
    def test_point_to_point_delivery(self):
        async def scenario():
            network = TcpNetwork(AioScheduler())
            a = Echo(pid("a"), network)
            b = Echo(pid("b"), network)
            await network.start()
            from repro.core.messages import UpdateOk

            network.send(pid("a"), pid("b"), UpdateOk(version=3))
            for _ in range(200):
                if b.received:
                    break
                await asyncio.sleep(0.01)
            await network.stop()
            return b.received

        received = run(scenario())
        assert len(received) == 1
        sender, payload = received[0]
        assert sender == pid("a") and payload.version == 3

    def test_fifo_over_one_connection(self):
        async def scenario():
            network = TcpNetwork(AioScheduler())
            a = Echo(pid("a"), network)
            b = Echo(pid("b"), network)
            await network.start()
            from repro.core.messages import UpdateOk

            for i in range(50):
                network.send(pid("a"), pid("b"), UpdateOk(version=i + 1))
            for _ in range(500):
                if len(b.received) == 50:
                    break
                await asyncio.sleep(0.01)
            await network.stop()
            return [payload.version for _, payload in b.received]

        versions = run(scenario())
        assert versions == list(range(1, 51))

    def test_send_to_dead_peer_is_silent(self):
        async def scenario():
            network = TcpNetwork(AioScheduler())
            a = Echo(pid("a"), network)
            b = Echo(pid("b"), network)
            await network.start()
            b.crash()
            from repro.core.messages import UpdateOk

            network.send(pid("a"), pid("b"), UpdateOk(version=1))
            await asyncio.sleep(0.05)
            await network.stop()
            return b.received

        assert run(scenario()) == []

    def test_trace_records_matching_msg_ids(self):
        async def scenario():
            network = TcpNetwork(AioScheduler())
            a = Echo(pid("a"), network)
            b = Echo(pid("b"), network)
            await network.start()
            from repro.core.messages import UpdateOk

            record = network.send(pid("a"), pid("b"), UpdateOk(version=1))
            for _ in range(200):
                if b.received:
                    break
                await asyncio.sleep(0.01)
            await network.stop()
            return network.trace, record

        trace, record = run(scenario())
        from repro.model.events import EventKind

        sends = trace.events_of(pid("a"), EventKind.SEND)
        recvs = trace.events_of(pid("b"), EventKind.RECV)
        assert sends and recvs
        assert sends[0].message.msg_id == recvs[0].message.msg_id == record.msg_id


class TestProtocolOverTcp:
    def test_exclusion_and_reconfiguration_over_sockets(self):
        async def scenario():
            runtime = AioMembershipRuntime(
                [f"n{i}" for i in range(5)],
                detector="heartbeat",
                heartbeat_period=0.03,
                heartbeat_timeout=0.15,
                transport="tcp",
            )
            await runtime.start_async()
            await runtime.run_for(0.15)
            runtime.crash("n2")
            assert await runtime.wait_for_agreement(timeout=15.0)
            runtime.crash("n0")  # the coordinator
            assert await runtime.wait_for_agreement(timeout=15.0)
            await runtime.stop_async()
            return runtime

        runtime = run(scenario())
        survivors = {m.pid.name for m in runtime.live_members()}
        assert survivors == {"n1", "n3", "n4"}
        assert all(m.state.mgr.name == "n1" for m in runtime.live_members())
        report = check_gmp(runtime.trace, runtime.initial_view, check_liveness=False)
        assert report.ok, format_report(report)

    def test_join_over_sockets(self):
        async def scenario():
            runtime = AioMembershipRuntime(
                [f"n{i}" for i in range(4)],
                detector="heartbeat",
                heartbeat_period=0.03,
                heartbeat_timeout=0.15,
                transport="tcp",
            )
            await runtime.start_async()
            await runtime.run_for(0.1)
            joiner = runtime.join("n9")
            deadline = asyncio.get_event_loop().time() + 15.0
            while asyncio.get_event_loop().time() < deadline:
                if runtime.members[joiner].is_member and runtime.in_agreement():
                    break
                await asyncio.sleep(0.02)
            await runtime.stop_async()
            return runtime, joiner

        runtime, joiner = run(scenario())
        assert runtime.members[joiner].is_member
        report = check_gmp(runtime.trace, runtime.initial_view, check_liveness=False)
        assert report.ok, format_report(report)

    def test_tcp_requires_async_start(self):
        async def scenario():
            runtime = AioMembershipRuntime(["n0", "n1"], transport="tcp")
            with pytest.raises(RuntimeError):
                runtime.start()

        run(scenario())


class TestCompactWire:
    """The struct-packed wire (wire="compact") over real sockets."""

    def test_unknown_wire_rejected(self):
        async def scenario():
            with pytest.raises(ValueError):
                TcpNetwork(AioScheduler(), wire="msgpack")

        run(scenario())

    def test_point_to_point_delivery_compact(self):
        async def scenario():
            network = TcpNetwork(AioScheduler(), wire="compact")
            Echo(pid("a"), network)
            b = Echo(pid("b"), network)
            await network.start()
            from repro.core.messages import Commit, remove

            payload = Commit(
                op=remove(pid("c")), version=4, contingent=None, faulty=(pid("c"),)
            )
            network.send(pid("a"), pid("b"), payload)
            for _ in range(200):
                if b.received:
                    break
                await asyncio.sleep(0.01)
            await network.stop()
            return b.received

        received = run(scenario())
        assert len(received) == 1
        sender, payload = received[0]
        assert sender == pid("a")
        assert payload.version == 4 and payload.faulty == (pid("c"),)

    def test_fifo_preserved_compact(self):
        async def scenario():
            network = TcpNetwork(AioScheduler(), wire="compact")
            Echo(pid("a"), network)
            b = Echo(pid("b"), network)
            await network.start()
            from repro.core.messages import UpdateOk

            for version in range(1, 21):
                network.send(pid("a"), pid("b"), UpdateOk(version=version))
            for _ in range(500):
                if len(b.received) == 20:
                    break
                await asyncio.sleep(0.01)
            await network.stop()
            return [payload.version for _, payload in b.received]

        assert run(scenario()) == list(range(1, 21))

    def test_exclusion_over_compact_sockets(self):
        """The full protocol (crash, exclusion, reconfiguration) survives the
        binary wire end to end."""

        async def scenario():
            runtime = AioMembershipRuntime(
                [f"n{i}" for i in range(4)],
                detector="heartbeat",
                heartbeat_period=0.03,
                heartbeat_timeout=0.15,
                transport="tcp",
                wire="compact",
            )
            await runtime.start_async()
            await runtime.run_for(0.15)
            runtime.crash("n2")
            ok = await runtime.wait_for_agreement(timeout=15.0)
            await runtime.stop_async()
            return runtime, ok

        runtime, ok = run(scenario())
        assert ok
        survivors = {m.pid.name for m in runtime.live_members()}
        assert survivors == {"n0", "n1", "n3"}
        report = check_gmp(runtime.trace, runtime.initial_view, check_liveness=False)
        assert report.ok, format_report(report)


class TestServeRace:
    def test_concurrent_serve_returns_one_server(self):
        """Two serve() calls for the same pid racing through the
        start_server await must converge on a single registered server
        (the loser closes its socket) — the double-start leak."""

        async def scenario():
            network = TcpNetwork(AioScheduler())
            Echo(pid("a"), network)
            ports = await asyncio.gather(
                network.serve(pid("a")),
                network.serve(pid("a")),
                network.serve(pid("a")),
            )
            registered = network._ports[pid("a")]
            servers = dict(network._servers)
            await network.stop()
            return ports, registered, servers

        ports, registered, servers = run(scenario())
        assert set(ports) == {registered}
        assert list(servers) == [pid("a")]

    def test_serve_after_race_still_accepts_connections(self):
        """The surviving server (not the discarded one) is the one peers
        can actually reach."""

        async def scenario():
            network = TcpNetwork(AioScheduler())
            a = Echo(pid("a"), network)
            b = Echo(pid("b"), network)
            await asyncio.gather(network.serve(pid("a")), network.serve(pid("a")))
            await network.serve(pid("b"))
            network._started = True
            from repro.core.messages import UpdateOk

            network.send(pid("b"), pid("a"), UpdateOk(version=7))
            for _ in range(200):
                if a.received:
                    break
                await asyncio.sleep(0.01)
            await network.stop()
            return a.received

        received = run(scenario())
        assert len(received) == 1
        assert received[0][1].version == 7
