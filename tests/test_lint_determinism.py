"""DET1xx determinism auditor: seeded violation fixtures and allowlisting."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import run_lint
from repro.lint.findings import Allowlist, Finding


def write(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def rules_of(result) -> set[str]:
    return {f.rule for f in result.findings}


def findings_for(result, rule: str) -> list[Finding]:
    return [f for f in result.findings if f.rule == rule]


# --------------------------------------------------------------------- DET101


def test_wall_clock_call_fires_det101(tmp_path: Path) -> None:
    write(
        tmp_path,
        "clock.py",
        """
        import time

        def stamp():
            return time.time()
        """,
    )
    result = run_lint(tmp_path)
    assert "DET101" in rules_of(result)
    (finding,) = findings_for(result, "DET101")
    assert finding.file == "clock.py"
    assert "time.time" in finding.message


def test_datetime_now_fires_det101(tmp_path: Path) -> None:
    write(
        tmp_path,
        "clock.py",
        """
        import datetime

        def stamp():
            return datetime.datetime.now()
        """,
    )
    assert "DET101" in rules_of(run_lint(tmp_path))


# --------------------------------------------------------------------- DET102


def test_global_rng_fires_det102(tmp_path: Path) -> None:
    write(
        tmp_path,
        "dice.py",
        """
        import random

        def roll():
            return random.random()
        """,
    )
    result = run_lint(tmp_path)
    (finding,) = findings_for(result, "DET102")
    assert "random.random" in finding.message


def test_unseeded_random_instance_fires_det102(tmp_path: Path) -> None:
    write(
        tmp_path,
        "dice.py",
        """
        import random

        rng = random.Random()
        """,
    )
    assert "DET102" in rules_of(run_lint(tmp_path))


def test_seeded_random_instance_is_clean(tmp_path: Path) -> None:
    write(
        tmp_path,
        "dice.py",
        """
        import random

        rng = random.Random(42)

        def roll():
            return rng.random()
        """,
    )
    assert run_lint(tmp_path).ok


def test_bare_import_of_rng_func_fires_det102(tmp_path: Path) -> None:
    write(
        tmp_path,
        "dice.py",
        """
        from random import choice

        def pick(xs):
            return choice(xs)
        """,
    )
    assert "DET102" in rules_of(run_lint(tmp_path))


# --------------------------------------------------------------------- DET103


def test_key_id_fires_det103(tmp_path: Path) -> None:
    write(
        tmp_path,
        "order.py",
        """
        def stable(xs):
            return sorted(xs, key=id)
        """,
    )
    assert "DET103" in rules_of(run_lint(tmp_path))


def test_id_comparison_fires_det103(tmp_path: Path) -> None:
    write(
        tmp_path,
        "order.py",
        """
        def older(a, b):
            return id(a) < id(b)
        """,
    )
    assert "DET103" in rules_of(run_lint(tmp_path))


# --------------------------------------------------------------------- DET104


def test_set_iteration_into_send_fires_det104(tmp_path: Path) -> None:
    write(
        tmp_path,
        "node.py",
        """
        class Node:
            def __init__(self):
                self.peers: set[str] = set()

            def fanout(self, net):
                for p in self.peers:
                    net.send(p, "ping")
        """,
    )
    result = run_lint(tmp_path)
    (finding,) = findings_for(result, "DET104")
    assert finding.file == "node.py"


def test_sorted_set_iteration_is_clean(tmp_path: Path) -> None:
    write(
        tmp_path,
        "node.py",
        """
        class Node:
            def __init__(self):
                self.peers: set[str] = set()

            def fanout(self, net):
                for p in sorted(self.peers):
                    net.send(p, "ping")
        """,
    )
    assert run_lint(tmp_path).ok


def test_set_iteration_without_sink_is_clean(tmp_path: Path) -> None:
    write(
        tmp_path,
        "node.py",
        """
        def total(weights: set[int]) -> int:
            acc = 0
            for w in weights:
                acc += w
            return acc
        """,
    )
    assert run_lint(tmp_path).ok


def test_comprehension_over_set_fires_det104(tmp_path: Path) -> None:
    write(
        tmp_path,
        "node.py",
        """
        def as_list(members: set[str]) -> list[str]:
            return [m for m in members]
        """,
    )
    assert "DET104" in rules_of(run_lint(tmp_path))


def test_local_set_alias_is_tracked(tmp_path: Path) -> None:
    write(
        tmp_path,
        "node.py",
        """
        def fanout(net, view):
            pending = {p for p in view}
            for p in pending:
                net.send(p, "ping")
        """,
    )
    assert "DET104" in rules_of(run_lint(tmp_path))


def test_nested_function_reported_once(tmp_path: Path) -> None:
    # A loop inside a nested helper must yield exactly one finding, not one
    # per enclosing scope.
    write(
        tmp_path,
        "node.py",
        """
        def outer(net, view: set[str]):
            def inner(targets: set[str]):
                for p in targets:
                    net.send(p, "ping")
            return inner
        """,
    )
    result = run_lint(tmp_path)
    assert len(findings_for(result, "DET104")) == 1


# ------------------------------------------------------------------ allowlist


def test_inline_allow_comment_suppresses(tmp_path: Path) -> None:
    write(
        tmp_path,
        "clock.py",
        """
        import time

        def stamp():
            return time.time()  # lint: allow[nondeterminism]
        """,
    )
    assert run_lint(tmp_path).ok


def test_standalone_allow_comment_covers_next_line(tmp_path: Path) -> None:
    write(
        tmp_path,
        "clock.py",
        """
        import time

        def stamp():
            # lint: allow[DET101]
            return time.time()
        """,
    )
    assert run_lint(tmp_path).ok


def test_allow_comment_is_rule_specific(tmp_path: Path) -> None:
    # An allow for the schema family must not silence a determinism finding.
    write(
        tmp_path,
        "clock.py",
        """
        import time

        def stamp():
            return time.time()  # lint: allow[schema]
        """,
    )
    assert "DET101" in rules_of(run_lint(tmp_path))


def test_allowlist_parsing() -> None:
    allow = Allowlist.from_source(
        "x = 1  # lint: allow[DET101, mutation]\n"
        "# lint: allow[SCH204]\n"
        "y = 2\n"
    )
    assert allow.permits(1, "DET101")
    assert allow.permits(1, "MUT302")
    assert not allow.permits(1, "SCH204")
    assert allow.permits(3, "SCH204")
    assert not allow.permits(2, "DET101")


# --------------------------------------------------------------------- DET105

_HELD_LOOP = """
class Network:
    def __init__(self):
        self._held: dict[tuple, list] = {}

    def heal(self, scheduler):
        for channel, records in self._held.items():
            for record in records:
                scheduler.at(0.0, record)
"""


def test_arrival_ordered_dict_loop_fires_det105(tmp_path: Path) -> None:
    write(tmp_path, "sim/network.py", _HELD_LOOP)
    result = run_lint(tmp_path)
    (finding,) = findings_for(result, "DET105")
    assert finding.file == "sim/network.py"
    assert "_held" in finding.message


def test_det105_scoped_to_sim_tree(tmp_path: Path) -> None:
    """The same loop outside sim/ is exempt (dict order is deterministic;
    only the simulation substrate treats insertion order as arrival
    history)."""
    write(tmp_path, "core/network.py", _HELD_LOOP)
    assert "DET105" not in rules_of(run_lint(tmp_path))


def test_sorted_dict_iteration_is_clean(tmp_path: Path) -> None:
    write(
        tmp_path,
        "sim/network.py",
        """
        class Network:
            def __init__(self):
                self._held: dict[tuple, list] = {}

            def heal(self, scheduler):
                for channel, records in sorted(self._held.items()):
                    for record in records:
                        scheduler.at(0.0, record)
        """,
    )
    assert "DET105" not in rules_of(run_lint(tmp_path))


def test_det105_tracks_hoisted_alias(tmp_path: Path) -> None:
    write(
        tmp_path,
        "sim/network.py",
        """
        class Network:
            def __init__(self):
                self._processes = {}

            def fanout(self, net):
                procs = self._processes
                for pid in procs:
                    net.send(pid, "ping")
        """,
    )
    assert "DET105" in rules_of(run_lint(tmp_path))


def test_dict_loop_without_sink_is_clean(tmp_path: Path) -> None:
    write(
        tmp_path,
        "sim/network.py",
        """
        class Network:
            def __init__(self):
                self._processes = {}

            def count_live(self):
                alive = 0
                for pid, proc in self._processes.items():
                    if not proc.crashed:
                        alive += 1
                return alive
        """,
    )
    assert "DET105" not in rules_of(run_lint(tmp_path))


def test_public_dict_attribute_is_exempt(tmp_path: Path) -> None:
    """Only private ``_x`` dicts carry the arrival-order convention."""
    write(
        tmp_path,
        "sim/registry.py",
        """
        class Registry:
            def __init__(self):
                self.members = {}

            def fanout(self, net):
                for pid in self.members:
                    net.send(pid, "ping")
        """,
    )
    assert "DET105" not in rules_of(run_lint(tmp_path))


# ------------------------------------------------------------ seeded fixture


def test_det102_fixture_fires_exactly_once() -> None:
    """The committed probe-scheduler fixture seeds exactly one DET102."""
    fixture = Path(__file__).parent / "fixtures" / "lint" / "det102"
    result = run_lint(fixture)
    assert rules_of(result) == {"DET102"}
    (finding,) = findings_for(result, "DET102")
    assert "random.shuffle" in finding.message


def test_injected_rng_probe_selection_is_clean(tmp_path: Path) -> None:
    """The fixture's repair — the SwimDetector idiom — lints clean."""
    write(
        tmp_path,
        "mod.py",
        """
        import random


        class ProbeScheduler:
            def __init__(self, members, rng: random.Random):
                self.members = list(members)
                self.rng = rng
                self._order = []

            def next_target(self):
                if not self._order:
                    self._order = list(self.members)
                    self.rng.shuffle(self._order)
                return self._order.pop()
        """,
    )
    assert "DET102" not in rules_of(run_lint(tmp_path))


# ----------------------------------------------------------------- repo scope


def test_repro_tree_is_clean() -> None:
    """The shipped package must lint clean (the merge gate)."""
    pkg_root = Path(__file__).resolve().parent.parent / "src" / "repro"
    result = run_lint(pkg_root)
    assert result.ok, "\n".join(
        f"{f.file}:{f.line}: {f.rule}: {f.message}" for f in result.findings
    )
