"""Tests for the JSON wire codec: every message type round-trips."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import codec
from repro.codec import CodecError, decode, decode_bytes, encode, encode_bytes
from repro.detectors.heartbeat import Ping, Pong
from repro.ids import ProcessId, pid
from repro.core.messages import (
    Commit,
    FaultyNotice,
    Interrogate,
    InterrogateOk,
    Invite,
    JoinRequest,
    Op,
    Plan,
    Propose,
    ProposeOk,
    ReconfigCommit,
    StateTransfer,
    UpdateOk,
    add,
    remove,
)

A, B, C = pid("a"), pid("b", 2), pid("c")

ALL_MESSAGES = [
    FaultyNotice(target=C),
    JoinRequest(joiner=pid("x", 3)),
    Invite(op=remove(C), version=4),
    UpdateOk(version=4),
    Commit(
        op=remove(C),
        version=4,
        contingent=add(pid("y")),
        faulty=(C, pid("z")),
        recovered=(pid("y"),),
    ),
    Commit(op=add(pid("y")), version=1, contingent=None),
    StateTransfer(
        view=(A, B),
        version=2,
        seq=(remove(C), add(B)),
        mgr=A,
        contingent=remove(B),
        faulty=(C,),
    ),
    Interrogate(hi_faulty=(A, C)),
    Interrogate(hi_faulty=()),
    InterrogateOk(
        version=3,
        seq=(remove(C),),
        plans=(Plan(remove(B), A, 4), Plan(None, B, None)),
    ),
    Propose(ops=(remove(A), remove(C)), version=5, invis=add(B), faulty=(A,)),
    ProposeOk(version=5),
    ReconfigCommit(ops=(remove(A),), version=5, invis=None, faulty=()),
    Ping(nonce=17),
    Pong(nonce=17),
]


class TestRoundTrips:
    @pytest.mark.parametrize(
        "message", ALL_MESSAGES, ids=lambda m: type(m).__name__ + "/" + str(hash(m) % 97)
    )
    def test_dict_round_trip(self, message):
        frame = encode(message, A, B)
        sender, receiver, decoded, category, msg_id = decode(frame)
        assert (sender, receiver, decoded, category) == (A, B, message, "protocol")
        assert msg_id is None

    @pytest.mark.parametrize(
        "message", ALL_MESSAGES, ids=lambda m: type(m).__name__ + "/" + str(hash(m) % 97)
    )
    def test_bytes_round_trip(self, message):
        data = encode_bytes(message, A, B, category="detector", msg_id=42)
        assert data.endswith(b"\n")
        sender, receiver, decoded, category, msg_id = decode_bytes(data)
        assert decoded == message and category == "detector" and msg_id == 42

    def test_frames_are_plain_json(self):
        for message in ALL_MESSAGES:
            frame = encode(message, A, B)
            json.dumps(frame)  # must not raise

    def test_incarnations_preserved(self):
        frame = encode(UpdateOk(version=1), B, A)
        sender, _, _, _, _ = decode(frame)
        assert sender == ProcessId("b", 2)


class TestRejections:
    def test_unknown_payload_type(self):
        with pytest.raises(CodecError):
            encode(object(), A, B)

    def test_unknown_frame_type(self):
        frame = encode(UpdateOk(version=1), A, B)
        frame["t"] = "Nonsense"
        with pytest.raises(CodecError):
            decode(frame)

    def test_wrong_wire_version(self):
        frame = encode(UpdateOk(version=1), A, B)
        frame["v"] = 99
        with pytest.raises(CodecError):
            decode(frame)

    def test_missing_body_field(self):
        frame = encode(Invite(op=remove(C), version=1), A, B)
        del frame["body"]["op"]
        with pytest.raises((CodecError, KeyError)):
            decode(frame)

    def test_invalid_json_bytes(self):
        with pytest.raises(CodecError):
            decode_bytes(b"{not json\n")

    def test_non_dict_frame(self):
        with pytest.raises(CodecError):
            decode([1, 2, 3])  # type: ignore[arg-type]

    def test_malformed_pid(self):
        frame = encode(UpdateOk(version=1), A, B)
        frame["from"] = "just-a-string"
        with pytest.raises(CodecError):
            decode(frame)

    def test_null_op_in_sequence(self):
        frame = encode(Propose(ops=(remove(A),), version=1, invis=None), A, B)
        frame["body"]["ops"] = [None]
        with pytest.raises(CodecError):
            decode(frame)


names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-", min_size=1, max_size=12
)
pids = st.builds(ProcessId, names, st.integers(0, 5))
ops = st.builds(Op, st.sampled_from(["add", "remove"]), pids)


class TestPropertyRoundTrips:
    @given(op=ops, version=st.integers(1, 10_000), sender=pids, receiver=pids)
    def test_invite_round_trips(self, op, version, sender, receiver):
        message = Invite(op=op, version=version)
        data = encode_bytes(message, sender, receiver)
        s, r, decoded, _, _ = decode_bytes(data)
        assert (s, r, decoded) == (sender, receiver, message)

    @given(
        ops_list=st.lists(ops, min_size=1, max_size=4),
        version=st.integers(1, 100),
        invis=st.none() | ops,
        faulty=st.lists(pids, max_size=4),
    )
    def test_reconfig_commit_round_trips(self, ops_list, version, invis, faulty):
        message = ReconfigCommit(
            ops=tuple(ops_list), version=version, invis=invis, faulty=tuple(faulty)
        )
        data = encode_bytes(message, A, B)
        _, _, decoded, _, _ = decode_bytes(data)
        assert decoded == message

    @given(
        version=st.integers(0, 50),
        seq=st.lists(ops, max_size=5),
        plans=st.lists(
            st.builds(
                Plan,
                st.none() | ops,
                pids,
                st.none() | st.integers(1, 50),
            ),
            max_size=3,
        ),
    )
    def test_interrogate_ok_round_trips(self, version, seq, plans):
        message = InterrogateOk(version=version, seq=tuple(seq), plans=tuple(plans))
        data = encode_bytes(message, A, B)
        _, _, decoded, _, _ = decode_bytes(data)
        assert decoded == message


# ------------------------------------------------------------- compact wire


class TestCompactRoundTrips:
    """Every message type must survive the struct-packed wire exactly, and
    agree byte-for-meaning with the JSON wire (the cross-codec check)."""

    @pytest.mark.parametrize(
        "message", ALL_MESSAGES, ids=lambda m: type(m).__name__
    )
    @pytest.mark.parametrize("category", ["protocol", "detector", "gossip"])
    @pytest.mark.parametrize("msg_id", [None, 42])
    def test_cross_codec_round_trip(self, message, category, msg_id):
        frame = codec.encode_compact(message, A, B, category, msg_id=msg_id)
        compact = codec.decode_compact(frame)
        via_json = decode_bytes(
            encode_bytes(message, A, B, category, msg_id=msg_id)
        )
        assert compact == via_json
        sender, receiver, payload, cat, mid = compact
        assert (sender, receiver, payload) == (A, B, message)
        assert (cat, mid) == (category, msg_id)

    def test_wire_version_and_magic(self):
        frame = codec.encode_compact(UpdateOk(version=1), A, B)
        assert frame[0] == 0xC3
        assert frame[1] == codec.COMPACT_WIRE_VERSION == 2

    @pytest.mark.parametrize(
        "message", ALL_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_compact_beats_json_size(self, message):
        compact = codec.encode_compact(message, A, B)
        as_json = encode_bytes(message, A, B)
        assert len(compact) < len(as_json)

    @given(
        version=st.integers(1, 100),
        seq=st.lists(ops, max_size=5),
        plans=st.lists(
            st.builds(Plan, st.none() | ops, pids, st.none() | st.integers(1, 50)),
            max_size=3,
        ),
    )
    def test_interrogate_ok_compact_round_trips(self, version, seq, plans):
        message = InterrogateOk(version=version, seq=tuple(seq), plans=tuple(plans))
        frame = codec.encode_compact(message, A, B)
        _, _, decoded, _, _ = codec.decode_compact(frame)
        assert decoded == message


class TestCompactRejections:
    @pytest.mark.parametrize(
        "message", ALL_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_every_truncation_is_rejected(self, message):
        """No prefix of any frame may decode — covers truncated pid lists,
        truncated strings, and missing bodies in one sweep."""
        frame = codec.encode_compact(message, A, B, "detector", msg_id=7)
        for cut in range(len(frame)):
            with pytest.raises(CodecError):
                codec.decode_compact(frame[:cut])

    def test_trailing_bytes_rejected(self):
        frame = codec.encode_compact(UpdateOk(version=1), A, B)
        with pytest.raises(CodecError):
            codec.decode_compact(frame + b"\x00")

    def test_bad_magic(self):
        frame = bytearray(codec.encode_compact(UpdateOk(version=1), A, B))
        frame[0] = 0x00
        with pytest.raises(CodecError):
            codec.decode_compact(bytes(frame))

    def test_wrong_wire_version(self):
        frame = bytearray(codec.encode_compact(UpdateOk(version=1), A, B))
        frame[1] = 99
        with pytest.raises(CodecError):
            codec.decode_compact(bytes(frame))

    def test_unknown_type_id(self):
        frame = bytearray(codec.encode_compact(UpdateOk(version=1), A, B))
        frame[2] = 0xEE
        with pytest.raises(CodecError):
            codec.decode_compact(bytes(frame))

    def test_unknown_flag_bits(self):
        frame = bytearray(codec.encode_compact(UpdateOk(version=1), A, B))
        frame[3] = 0x07
        with pytest.raises(CodecError):
            codec.decode_compact(bytes(frame))

    def test_unknown_category_code(self):
        frame = bytearray(codec.encode_compact(UpdateOk(version=1), A, B))
        # category byte sits right after the two pids
        offset = 4
        for _ in range(2):  # sender, receiver
            (name_len,) = codec._U16.unpack_from(frame, offset)
            offset += 2 + name_len + 4
        frame[offset] = 0x7F
        with pytest.raises(CodecError):
            codec.decode_compact(bytes(frame))

    def test_negative_version_refused_by_encoder(self):
        with pytest.raises(CodecError):
            codec.encode_compact(UpdateOk(version=-1), A, B)

    def test_oversize_version_refused_by_encoder(self):
        with pytest.raises(CodecError):
            codec.encode_compact(UpdateOk(version=2**32), A, B)


class TestJsonRejectionsExtended:
    """Error paths shared with (and mirrored by) the compact wire."""

    def test_frame_missing_body(self):
        frame = encode(UpdateOk(version=1), A, B)
        del frame["body"]
        with pytest.raises(CodecError):
            decode(frame)

    def test_negative_version(self):
        frame = encode(UpdateOk(version=1), A, B)
        frame["body"]["version"] = -3
        with pytest.raises(CodecError):
            decode(frame)

    def test_non_numeric_version(self):
        frame = encode(UpdateOk(version=1), A, B)
        frame["body"]["version"] = "three"
        with pytest.raises(CodecError):
            decode(frame)

    def test_truncated_pid_list(self):
        frame = encode(Interrogate(hi_faulty=(A, C)), A, B)
        frame["body"]["hi_faulty"] = [[A.name]]  # pid missing incarnation
        with pytest.raises(CodecError):
            decode(frame)
