"""Tests for the parallel execution engine (repro.runner).

Covers the worker pool's deterministic ordering, the content-addressed
scenario cache (including source-fingerprint invalidation), the
experiment tables' serial-vs-parallel equivalence, and the bench driver's
machine-readable output.
"""

from __future__ import annotations

import json
import os

from repro.analysis.experiments import baseline_table, best_case_table
from repro.runner.bench import run_bench
from repro.runner.cache import ScenarioCache, source_fingerprint
from repro.runner.pool import ScenarioJob, default_workers, parallel_map, run_jobs
from repro.workloads.failures import single_failure_messages


def _square(x: int) -> int:
    return x * x


def _with_seed(n: int, seed: int = 0) -> tuple[int, int]:
    return (n, seed)


class TestWorkerPool:
    def test_results_in_submission_order_serial(self):
        jobs = [ScenarioJob(fn=_square, kwargs={"x": x}) for x in (3, 1, 2)]
        assert run_jobs(jobs, workers=1) == [9, 1, 4]

    def test_results_in_submission_order_parallel(self):
        jobs = [ScenarioJob(fn=_square, kwargs={"x": x}) for x in range(8)]
        assert run_jobs(jobs, workers=2) == [x * x for x in range(8)]

    def test_seed_is_injected_into_kwargs(self):
        job = ScenarioJob(fn=_with_seed, kwargs={"n": 5}, seed=7)
        assert job.call() == (5, 7)

    def test_parallel_map_matches_serial(self):
        items = list(range(10))
        assert parallel_map(_square, items, workers=2) == [x * x for x in items]

    def test_real_scenario_serial_vs_parallel(self):
        jobs = [
            ScenarioJob(fn=single_failure_messages, kwargs={"n": n, "seed": 0})
            for n in (3, 4, 5)
        ]
        assert run_jobs(jobs, workers=1) == run_jobs(jobs, workers=2)

    def test_default_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        assert default_workers() == (os.cpu_count() or 1)


class TestScenarioCache:
    def test_round_trip(self, tmp_path):
        cache = ScenarioCache(root=tmp_path, fingerprint="fp")
        assert cache.get("s", {"n": 4}) is None
        cache.put("s", {"n": 4}, 42)
        assert cache.get("s", {"n": 4}) == 42
        assert cache.get("s", {"n": 5}) is None

    def test_get_or_compute_runs_once(self, tmp_path):
        cache = ScenarioCache(root=tmp_path, fingerprint="fp")
        calls = []

        def compute():
            calls.append(1)
            return 7

        assert cache.get_or_compute("s", {"n": 1}, compute) == 7
        assert cache.get_or_compute("s", {"n": 1}, compute) == 7
        assert len(calls) == 1

    def test_source_fingerprint_change_invalidates(self, tmp_path):
        """The acceptance case: touching protocol source must miss the cache."""
        extra = tmp_path / "fake_core.py"
        extra.write_text("X = 1\n")
        before = source_fingerprint(extra_files=[extra])
        cache = ScenarioCache(root=tmp_path / "cache", fingerprint=before)
        cache.put("single", {"n": 4, "seed": 0}, 99)
        assert cache.get("single", {"n": 4, "seed": 0}) == 99

        extra.write_text("X = 2\n")
        after = source_fingerprint(extra_files=[extra])
        assert after != before
        stale = ScenarioCache(root=tmp_path / "cache", fingerprint=after)
        assert stale.get("single", {"n": 4, "seed": 0}) is None

    def test_fingerprint_is_stable(self):
        assert source_fingerprint() == source_fingerprint()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ScenarioCache(root=tmp_path, fingerprint="fp")
        cache.put("s", {"n": 1}, 5)
        for entry in tmp_path.glob("*.json"):
            entry.write_text("{not json")
        assert cache.get("s", {"n": 1}) is None


class TestTablesSerialVsParallel:
    def test_best_case_table_identical_rows(self):
        serial = best_case_table(sizes=[4, 6], workers=1)
        parallel = best_case_table(sizes=[4, 6], workers=2)
        assert serial.rows == parallel.rows
        assert serial.render() == parallel.render()

    def test_baseline_table_identical_rows(self):
        serial = baseline_table(sizes=[6], workers=1)
        parallel = baseline_table(sizes=[6], workers=2)
        assert serial.rows == parallel.rows
        assert serial.render() == parallel.render()

    def test_best_case_table_uses_cache(self, tmp_path):
        cache = ScenarioCache(root=tmp_path, fingerprint="pinned")
        first = best_case_table(sizes=[4], cache=cache)
        assert list(tmp_path.glob("*.json")), "expected cache entries"
        second = best_case_table(sizes=[4], cache=cache)
        assert first.rows == second.rows

    def test_poisoned_cache_proves_hits_are_used(self, tmp_path):
        """Seed the cache with a wrong value: the table must reflect it,
        proving lookups actually bypass the simulation."""
        cache = ScenarioCache(root=tmp_path, fingerprint="pinned")
        cache.put("single-failure", {"n": 4, "seed": 0}, 999)
        table = best_case_table(sizes=[4], cache=cache)
        assert table.rows[0][2] == "999"


class TestBenchDriver:
    def test_quick_bench_writes_valid_json(self, tmp_path):
        out = run_bench(quick=True, workers=1, out_dir=tmp_path)
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-bench/1"
        assert payload["quick"] is True
        assert payload["scenarios"], "expected timed scenario cells"
        for cell in payload["scenarios"]:
            assert cell["wall_s"] >= 0
            assert isinstance(cell["messages"], int)
        engines = payload["explorer"]["engines"]
        assert engines["deepcopy"]["terminals"] == engines["snapshot"]["terminals"]
        assert engines["deepcopy"]["tree_states"] == engines["snapshot"]["tree_states"]
        # The headline acceptance: >= 5x tree states covered per second.
        assert payload["explorer"]["speedup_tree_states_per_sec"] >= 5.0
        dedup = payload["dedup"]
        assert dedup["states"] < dedup["tree_states"]
        assert dedup["ok"] and dedup["complete"]


class TestScaleBench:
    def test_churn_cell_measures_throughput(self):
        from repro.runner.bench import _churn_cell

        cell = _churn_cell(6)
        assert cell["n"] == 6
        assert cell["events"] > 0 and cell["msgs"] > 0
        assert cell["events_per_sec"] > 0 and cell["msgs_per_sec"] > 0

    @staticmethod
    def _payload(rates: dict[int, float]) -> dict:
        return {
            "scale": {
                "workload": "join-churn-exclude",
                "trace_level": "counts",
                "cells": [
                    {"n": n, "events_per_sec": rate} for n, rate in rates.items()
                ],
            }
        }

    def test_regression_beyond_threshold_flagged(self):
        from repro.runner.bench import check_scale_regression

        fresh = self._payload({100: 500.0})
        baseline = self._payload({100: 1000.0})
        failures = check_scale_regression(fresh, baseline)
        assert len(failures) == 1 and "n=100" in failures[0]

    def test_within_threshold_passes(self):
        from repro.runner.bench import check_scale_regression

        fresh = self._payload({100: 800.0})
        baseline = self._payload({100: 1000.0})
        assert check_scale_regression(fresh, baseline) == []

    def test_faster_run_passes(self):
        from repro.runner.bench import check_scale_regression

        assert (
            check_scale_regression(
                self._payload({100: 2000.0}), self._payload({100: 1000.0})
            )
            == []
        )

    def test_sizes_only_in_baseline_skipped(self):
        from repro.runner.bench import check_scale_regression

        fresh = self._payload({100: 900.0})
        baseline = self._payload({100: 1000.0, 1000: 500.0})
        assert check_scale_regression(fresh, baseline) == []

    def test_missing_scale_section_reported(self):
        from repro.runner.bench import check_scale_regression

        failures = check_scale_regression({}, self._payload({100: 1000.0}))
        assert failures and "scale" in failures[0]

    def test_summarize_renders_scale_cells(self):
        from repro.runner.bench import summarize

        payload = {
            "scenarios": [],
            "explorer": {
                "scenario": "x",
                "engines": {},
                "speedup_tree_states_per_sec": 1.0,
            },
            "dedup": {
                "scenario": "y",
                "tree_states": 2,
                "states": 1,
                "state_reduction_factor": 2.0,
            },
            "scale": {
                "workload": "join-churn-exclude",
                "trace_level": "counts",
                "cells": [
                    {
                        "n": 10,
                        "wall_s": 0.5,
                        "events": 100,
                        "events_per_sec": 200.0,
                        "msgs": 80,
                        "msgs_per_sec": 160.0,
                    }
                ],
            },
        }
        text = summarize(payload)
        assert "join-churn-exclude" in text
        assert "n=10" in text and "200" in text
