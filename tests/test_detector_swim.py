"""SWIM/Lifeguard detector family: behavior, determinism, inertness, QoS.

The determinism and inertness classes mirror ``test_state_equivalence.py``:
same-seed runs must produce byte-identical FULL traces, and dialing trace
level down (with obs detached) must change *observation* only — event and
message counts stay exactly what they were.
"""

from __future__ import annotations

import random
import re

import pytest

from repro.detectors.swim import (
    ALIVE,
    FAULTY,
    SUSPECT,
    LifeguardDetector,
    Probe,
    SwimDetector,
)
from repro.ids import pid
from repro.obs import Obs
from repro.runner.bench import check_detector_qos
from repro.sim.network import FixedDelay, Network
from repro.sim.scheduler import Scheduler
from repro.sim.trace import RunTrace
from repro.workloads.qos import (
    DetectorHost,
    QosRun,
    detector_qos_cell,
    detector_qos_run,
    _slow_members,
)

A, B, C, D = pid("a"), pid("b"), pid("c"), pid("d")


def build_group(kind="swim", members=(A, B, C), delay=0.5, **kwargs):
    scheduler = Scheduler()
    network = Network(scheduler, RunTrace(), delay_model=FixedDelay(delay), seed=0)
    cls = SwimDetector if kind == "swim" else LifeguardDetector
    hosts = {}
    for index, member in enumerate(members):
        # indirect_timeout gets headroom over the 4-hop relay chain
        # (4 x 0.5 delay), or the failure timer ties with the relayed ack.
        detector = cls(
            network,
            period=1.0,
            probe_timeout=2.0,
            indirect_timeout=3.0,
            suspicion_timeout=4.0,
            rng=random.Random(100 + index),
            **kwargs,
        )
        hosts[member] = DetectorHost(member, network, detector, members)
    for host in hosts.values():
        host.start()
    return scheduler, network, hosts


def canonical(trace) -> list[str]:
    # msg_id is a process-global counter — strip it, keep everything else.
    return [re.sub(r"\bm\d+\[", "m[", f"{e.time:.9f}|{e}") for e in trace]


class TestSwimBehavior:
    def test_crashed_member_gets_suspected_then_convicted(self):
        scheduler, network, hosts = build_group()
        scheduler.at(5.0, hosts[C].crash)
        scheduler.run(until=60.0)
        for observer in (A, B):
            assert C in hosts[observer].suspected
        # Suspicion precedes the verdict: no conviction can land before
        # the probe round plus the suspicion window have both run out.
        earliest = min(
            hosts[m].detector.suspicion_times()[C] for m in (A, B)
        )
        assert earliest >= 5.0 + 2.0 + 4.0

    def test_live_group_raises_no_suspicions(self):
        scheduler, network, hosts = build_group()
        scheduler.run(until=80.0)
        assert all(host.suspected == set() for host in hosts.values())

    def test_indirect_relay_survives_a_bad_direct_path(self):
        # A and B cannot talk directly, but C relays probes both ways: the
        # whole point of probe-req — one bad link must not convict anyone.
        scheduler, network, hosts = build_group()
        network.partition({A}, {B})
        scheduler.run(until=80.0)
        assert hosts[A].suspected == set()
        assert hosts[B].suspected == set()

    def test_evidence_refutes_an_active_suspicion(self):
        scheduler, network, hosts = build_group()
        detector = hosts[A].detector
        scheduler.run(until=2.0)
        detector._start_suspicion(B)
        assert B in detector._suspicion_deadline
        detector.on_message(B, Probe(nonce=99))
        assert B not in detector._suspicion_deadline
        # The refutation is gossiped so third parties drop it too.
        assert (ALIVE, B) in detector._gossip
        scheduler.run(until=20.0)
        assert hosts[A].suspected == set()

    def test_faulty_gossip_convicts_without_local_probing(self):
        scheduler, network, hosts = build_group()
        detector = hosts[A].detector
        detector.on_message(C, Probe(nonce=7, updates=((FAULTY, B),)))
        assert B in hosts[A].suspected

    def test_suspect_gossip_about_self_queues_refutation(self):
        scheduler, network, hosts = build_group()
        detector = hosts[A].detector
        detector.on_message(C, Probe(nonce=7, updates=((SUSPECT, A),)))
        assert (ALIVE, A) in detector._gossip

    def test_piggyback_budget_bounds_retransmissions(self):
        scheduler, network, hosts = build_group()
        detector = hosts[A].detector
        detector.gossip_budget = 2
        detector._queue_update(SUSPECT, B)
        assert detector._take_updates() == ((SUSPECT, B),)
        assert detector._take_updates() == ((SUSPECT, B),)
        assert detector._take_updates() == ()

    def test_direct_timeout_without_helpers_keeps_gossip_budget(self):
        # A two-member view has nobody to relay through; the timeout must
        # not pop piggyback updates it cannot send.
        scheduler, network, hosts = build_group(members=(A, B))
        detector = hosts[A].detector
        detector._queue_update(SUSPECT, B)
        budget_before = dict(detector._gossip)
        detector._pending[77] = B
        detector._direct_timeout(77)
        assert detector._gossip == budget_before

    def test_constructor_validation(self):
        scheduler = Scheduler()
        network = Network(scheduler, RunTrace(), seed=0)
        with pytest.raises(ValueError):
            SwimDetector(network, period=0.0)
        with pytest.raises(ValueError):
            SwimDetector(network, indirect_probes=-1)
        with pytest.raises(ValueError):
            LifeguardDetector(network, max_lhm=0)


class TestLifeguardHealth:
    def test_lhm_rises_on_misses_and_decays_on_acks(self):
        scheduler = Scheduler()
        network = Network(scheduler, RunTrace(), seed=0)
        detector = LifeguardDetector(network, rng=random.Random(1))
        assert detector._timeout_scale() == 1.0
        detector._on_probe_missed()
        detector._on_probe_missed()
        assert detector.local_health() == 2
        assert detector._timeout_scale() == 3.0
        detector._on_probe_acked()
        assert detector.local_health() == 1

    def test_lhm_saturates_at_max(self):
        scheduler = Scheduler()
        network = Network(scheduler, RunTrace(), seed=0)
        detector = LifeguardDetector(network, rng=random.Random(1), max_lhm=3)
        for _ in range(10):
            detector._on_probe_missed()
        assert detector.local_health() == 3

    def test_hearing_oneself_suspected_raises_lhm(self):
        scheduler, network, hosts = build_group(kind="lifeguard")
        detector = hosts[A].detector
        detector.on_message(C, Probe(nonce=7, updates=((SUSPECT, A),)))
        assert detector.local_health() == 1

    def test_lhm_decays_through_delivered_acks(self):
        # End-to-end over the real network path: a healthy group's ack
        # traffic must drain the LHM.  (Regression: _mark_alive used to
        # cancel the pending nonce before the ProbeAck branch looked at
        # it, so *direct* acks never reached the timely-ack hook and a
        # stretched LHM stayed stretched forever.)
        scheduler, network, hosts = build_group(kind="lifeguard")
        detector = hosts[A].detector
        scheduler.run(until=2.0)
        detector._lhm = 5
        scheduler.run(until=40.0)
        assert detector.local_health() == 0

    def test_isolated_observer_goes_unhealthy(self):
        # A partitioned from everyone: every probe round misses, so its
        # local health saturates instead of it convicting the whole group.
        scheduler, network, hosts = build_group(kind="lifeguard")
        network.partition({A}, {B, C})
        scheduler.run(until=60.0)
        assert hosts[A].detector.local_health() > 0


class TestDeterminism:
    @pytest.mark.parametrize("kind", ["swim", "lifeguard"])
    @pytest.mark.parametrize("plan", ["crash-only", "slow-flaky"])
    def test_same_seed_full_traces_are_byte_identical(self, kind, plan):
        first = detector_qos_run(
            kind, 16, plan=plan, seed=5, duration=40.0, trace_level="full"
        )
        second = detector_qos_run(
            kind, 16, plan=plan, seed=5, duration=40.0, trace_level="full"
        )
        assert canonical(first.network.trace) == canonical(second.network.trace)

    def test_different_seeds_diverge(self):
        # Sanity that the injected RNGs actually steer the run.
        first = detector_qos_run(
            "swim", 16, seed=5, duration=40.0, trace_level="full"
        )
        second = detector_qos_run(
            "swim", 16, seed=6, duration=40.0, trace_level="full"
        )
        assert canonical(first.network.trace) != canonical(second.network.trace)

    @pytest.mark.parametrize("kind", ["swim", "lifeguard"])
    def test_cluster_wiring_is_deterministic(self, kind):
        # Through MembershipCluster (sha256 per-member seeds), not just the
        # standalone harness.
        from repro.core.service import MembershipCluster

        def run():
            cluster = MembershipCluster.of_size(6, detector=kind, seed=11)
            cluster.start()
            cluster.crash("p5", at=10.0)
            cluster.run(until=90.0)
            return canonical(cluster.trace)

        assert run() == run()


class TestInertness:
    @pytest.mark.parametrize("kind", ["swim", "lifeguard"])
    def test_counts_level_without_obs_runs_the_same_events(self, kind):
        # Observation must never perturb: FULL trace + obs capture and
        # COUNTS trace + no obs execute the exact same simulation.
        instrumented = detector_qos_run(
            kind,
            16,
            plan="slow-flaky",
            seed=5,
            duration=40.0,
            trace_level="full",
            obs=Obs(),
        )
        bare = detector_qos_run(
            kind, 16, plan="slow-flaky", seed=5, duration=40.0, trace_level="counts"
        )
        assert (
            instrumented.scheduler.events_run == bare.scheduler.events_run
        )
        assert (
            instrumented.network.trace.message_counts_by_category()
            == bare.network.trace.message_counts_by_category()
        )

    def test_obs_captures_detector_instruments(self):
        obs = Obs()
        detector_qos_run("swim", 16, seed=5, duration=40.0, obs=obs)
        rendered = {m.name for m in obs.metrics.families()}
        assert "repro_detector_msgs_per_round" in rendered
        assert "repro_detector_probe_rtt" in rendered


class TestQosHarness:
    def test_cell_shape_and_qos_axes(self):
        cell = detector_qos_cell("swim", 30, plan="crash-only", seed=3)
        assert cell["detection"]["detected"] == 2
        assert cell["false_positives"]["distinct_targets"] == 0
        assert 0 < cell["msgs_per_process_per_round"] < 10
        assert cell["detector_msgs"] > 0

    def test_heartbeat_fanout_dwarfs_swim(self):
        heartbeat = detector_qos_cell("heartbeat", 20, seed=3)
        swim = detector_qos_cell("swim", 20, seed=3)
        assert (
            heartbeat["msgs_per_process_per_round"]
            > 5 * swim["msgs_per_process_per_round"]
        )

    def test_slow_members_skip_victims(self):
        members = [pid(f"q{i}") for i in range(100)]
        victims = (members[-1], members[-2])
        slow = _slow_members(members, victims)
        assert len(slow) == 5
        assert not (slow & set(victims))

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            detector_qos_run("swim", 30, plan="nope")
        with pytest.raises(ValueError):
            detector_qos_run("carrier-pigeon", 30)
        with pytest.raises(ValueError):
            detector_qos_run("swim", 2)

    def test_pre_crash_conviction_is_not_a_detection(self):
        # A false positive whose timestamp coincides with (or predates)
        # the crash must not masquerade as a 0-latency detection, and a
        # victim only ever convicted pre-crash leaves the denominator.
        scheduler = Scheduler()
        network = Network(scheduler, RunTrace(), seed=0)
        members = (A, B, C, D)
        hosts = {}
        for member in members:
            detector = SwimDetector(network, rng=random.Random(1))
            hosts[member] = DetectorHost(member, network, detector, members)
        run = QosRun(
            scheduler, network, hosts, (D,), {D: 10.0}, frozenset(), 50.0
        )
        hosts[A].detector._suspicion_times[D] = 10.0  # coincident FP
        hosts[B].detector._suspicion_times[D] = 16.0  # real detection
        assert run.detection_latencies() == {"d": 6.0}
        assert run.pre_crash_convicted() == []
        # Without B's verdict the victim is immeasurable, not undetected.
        del hosts[B].detector._suspicion_times[D]
        assert run.detection_latencies() == {}
        assert run.pre_crash_convicted() == ["d"]


def qos_cell(kind, n, plan, ppr, fp):
    return {
        "kind": kind,
        "n": n,
        "plan": plan,
        "seed": 1,
        "msgs_per_process_per_round": ppr,
        "false_positives": {"distinct_targets": fp, "observer_target_pairs": fp},
    }


class TestQosGate:
    def test_no_section_passes(self):
        assert check_detector_qos({}) == []

    def test_flat_swim_and_better_lifeguard_pass(self):
        payload = {
            "detectors": {
                "cells": [
                    qos_cell("swim", 100, "crash-only", 2.0, 0),
                    qos_cell("swim", 1000, "crash-only", 2.1, 0),
                    qos_cell("swim", 100, "slow-flaky", 2.5, 20),
                    qos_cell("lifeguard", 100, "slow-flaky", 2.4, 12),
                ]
            }
        }
        assert check_detector_qos(payload) == []

    def test_growing_swim_ppr_fails(self):
        payload = {
            "detectors": {
                "cells": [
                    qos_cell("swim", 100, "crash-only", 2.0, 0),
                    qos_cell("swim", 1000, "crash-only", 5.0, 0),
                ]
            }
        }
        (failure,) = check_detector_qos(payload)
        assert "grew with n" in failure

    def test_lifeguard_fp_regression_fails(self):
        payload = {
            "detectors": {
                "cells": [
                    qos_cell("swim", 100, "crash-only", 2.0, 0),
                    qos_cell("swim", 1000, "crash-only", 2.1, 0),
                    qos_cell("swim", 100, "slow-flaky", 2.5, 5),
                    qos_cell("lifeguard", 100, "slow-flaky", 2.4, 9),
                ]
            }
        }
        (failure,) = check_detector_qos(payload)
        assert "false positives exceed" in failure

    def test_single_size_swim_section_fails_as_vacuous(self):
        # lo == hi can never trip the ratio check — the gate must say so
        # instead of passing a claim it did not test.
        payload = {
            "detectors": {"cells": [qos_cell("swim", 100, "crash-only", 2.0, 0)]}
        }
        (failure,) = check_detector_qos(payload)
        assert "vacuous" in failure
