"""Tests for the primary-partition tracker and the composite app layer."""

from __future__ import annotations

from repro.extensions import (
    ClientDirectory,
    CompositeLayer,
    PrimaryPartitionTracker,
    VsyncLayer,
)
from repro.ids import pid

from conftest import assert_gmp, make_cluster, names


def cluster_with_trackers(n: int = 5, **kwargs):
    cluster = make_cluster(n, **kwargs)
    trackers = {
        p: PrimaryPartitionTracker(m) for p, m in cluster.members.items()
    }
    return cluster, trackers


class TestPrimaryTracking:
    def test_everyone_primary_in_steady_state(self):
        cluster, trackers = cluster_with_trackers()
        cluster.run(until=5.0)
        assert all(t.is_primary() for t in trackers.values())

    def test_crashed_member_not_primary(self):
        cluster, trackers = cluster_with_trackers()
        cluster.crash("p2", at=5.0)
        cluster.settle()
        assert not trackers[pid("p2")].is_primary()
        for name in ("p0", "p1", "p3", "p4"):
            assert trackers[pid(name)].is_primary()

    def test_minority_side_of_split_loses_primary_immediately(self):
        # Beliefs split 3/2: the minority must stop claiming primariness
        # even though no view change can complete on its side.
        cluster, trackers = cluster_with_trackers(5, detector="scripted")
        cluster.run(until=5.0)
        majority = ["p0", "p1", "p2"]
        minority = ["p3", "p4"]
        for a in majority:
            for b in minority:
                cluster.suspect(a, b, at=6.0)
                cluster.suspect(b, a, at=6.0)
        cluster.settle()
        for name in minority:
            assert not trackers[pid(name)].is_primary()
        for name in majority:
            assert trackers[pid(name)].is_primary()

    def test_primary_chain_follows_view_changes(self):
        cluster, trackers = cluster_with_trackers(5)
        cluster.crash("p0", at=5.0)
        cluster.crash("p4", at=40.0)
        cluster.settle()
        survivors = [p for p, m in cluster.members.items() if m.is_member]
        for p in survivors:
            tracker = trackers[p]
            assert tracker.is_primary()
            assert names(tracker.last_primary_view) == ["p1", "p2", "p3"]

    def test_joiner_inherits_primariness(self):
        cluster, trackers = cluster_with_trackers(4)
        joiner = cluster.join("x", at=5.0)
        cluster.settle()
        tracker = PrimaryPartitionTracker(cluster.members[joiner])
        # Attach after join: seeds from the current state.
        assert tracker.is_primary()


class TestCompositeLayer:
    def test_multiple_services_on_one_member(self):
        cluster = make_cluster(4, seed=3)
        # Each member runs vsync + a client directory; each child constructor
        # claims member.app, and the composite (built last) reclaims it.
        composites = {}
        for p, member in cluster.members.items():
            vsync = VsyncLayer(member)
            directory = ClientDirectory(member)
            CompositeLayer(member, vsync, directory)
            composites[p] = (vsync, directory)
        cluster.run(until=5.0)
        vsync0, dir0 = composites[pid("p0")]
        vsync0.multicast("hello")
        dir0.admit(pid("client-a"))
        cluster.settle()
        for p, (vsync, directory) in composites.items():
            assert [d.payload for d in vsync.deliveries] == ["hello"]
            assert pid("client-a") in directory.view

    def test_composite_fans_out_view_installs_and_flushes(self):
        cluster = make_cluster(4, seed=4)
        events = []

        from repro.core.member import AppLayer

        class Probe(AppLayer):
            def __init__(self, tag):
                self.tag = tag

            def on_view_installed(self, version, view, mgr):
                events.append((self.tag, "install", version))

            def before_view_agreement(self, version):
                events.append((self.tag, "flush", version))

        member = cluster.member("p1")
        CompositeLayer(member, Probe("x"), Probe("y"))
        cluster.crash("p3", at=5.0)
        cluster.settle()
        assert ("x", "flush", 1) in events and ("y", "flush", 1) in events
        assert ("x", "install", 1) in events and ("y", "install", 1) in events
        # Order within one hook: children in composition order.
        flushes = [e for e in events if e[1] == "flush"]
        assert flushes[0][0] == "x" and flushes[1][0] == "y"

    def test_add_child_later(self):
        cluster = make_cluster(3, seed=5)
        member = cluster.member("p0")
        composite = CompositeLayer(member)
        vsync = VsyncLayer(member)  # steals member.app...
        composite.add(vsync)
        member.app = composite  # ...restore composite as the root
        cluster.run(until=5.0)
        vsync.multicast("later")
        cluster.settle()
        assert [d.payload for d in vsync.deliveries] == ["later"]

    def test_vsync_flush_still_works_under_composition(self):
        from repro.sim.failures import crash_after_matching_sends, payload_type_is
        from repro.sim.network import FixedDelay

        cluster = make_cluster(5, seed=6, delay_model=FixedDelay(1.0))
        vsyncs = {}
        for p, member in cluster.members.items():
            vsync = VsyncLayer(member)
            directory = ClientDirectory(member)
            CompositeLayer(member, vsync, directory)
            vsyncs[p] = vsync
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve("p3"),
            payload_type_is("VsMessage"),
            after=1,
        )
        cluster.run(until=5.0)
        vsyncs[pid("p3")].multicast("torn")
        cluster.settle()
        survivors = {
            p: v for p, v in vsyncs.items() if cluster.members[p].is_member
        }
        sets = {frozenset(v.delivered_set(0)) for v in survivors.values()}
        assert len(sets) == 1 and next(iter(sets))
        assert_gmp(cluster)
