"""Integration tests for the instrumented layers feeding `repro.obs`.

Three obligations:

1. **Coverage** — an instrumented churn run (join + junior crash +
   coordinator crash) emits the whole span taxonomy: both reconfiguration
   phases, update rounds, view installs, and detector events where a
   heartbeat detector runs.
2. **Inertness** — attaching an ``Obs`` must not perturb the simulation:
   the FULL trace renders byte-identical with and without capture, and the
   COUNTS-level churn run executes exactly the same events.
3. **Ground truth** — the detector's false-suspicion accounting agrees
   with the trace's crash record, and :meth:`HeartbeatDetector.suspicions`
   exposes the verdicts read-only.
"""

from __future__ import annotations

import pytest

from repro.detectors.heartbeat import HeartbeatDetector
from repro.ids import pid
from repro.obs import Obs
from repro.sim.network import FixedDelay, Network
from repro.sim.process import SimProcess
from repro.sim.scheduler import Scheduler
from repro.sim.trace import RunTrace
from repro.workloads.failures import churn_run

A, B = pid("a"), pid("b")


class Host(SimProcess):
    """Minimal Suspectable process hosting a detector (test_detectors idiom)."""

    def __init__(self, pid_, network, detector, members):
        super().__init__(pid_, network)
        self.detector = detector
        self.members = tuple(members)
        self.suspected: list = []
        detector.attach(self)

    def on_start(self):
        self.detector.start()

    def current_members(self):
        return self.members

    def is_current_member(self, target):
        return target in self.members

    def believes_faulty(self, target):
        return target in self.suspected

    def on_suspect(self, target):
        self.suspected.append(target)

    def on_message(self, sender, payload):
        self.detector.on_message(sender, payload)


class TestSpanCoverage:
    @pytest.fixture(scope="class")
    def capture(self):
        obs = Obs()
        cluster = churn_run(6, seed=0, obs=obs)
        return obs, cluster

    def test_churn_emits_full_span_taxonomy(self, capture):
        obs, _cluster = capture
        names = {r["name"] for r in obs.spans.records}
        assert {
            "reconfig.phase1",
            "reconfig.phase2",
            "reconfig.total",
            "update.round",
            "view.install",
        } <= names

    def test_reconfig_phases_nest_inside_total(self, capture):
        obs, _cluster = capture
        (total,) = [r for r in obs.spans.records if r["name"] == "reconfig.total"]
        phases = [
            r
            for r in obs.spans.records
            if r["name"] in ("reconfig.phase1", "reconfig.phase2")
        ]
        assert len(phases) == 2
        for phase in phases:
            assert total["start"] <= phase["start"] <= phase["end"] <= total["end"]

    def test_view_installs_match_trace_installs(self, capture):
        obs, _cluster = capture
        installs = [r for r in obs.spans.records if r["name"] == "view.install"]
        assert installs, "no view.install spans recorded"
        # Every install span carries the proc label and a positive duration.
        for record in installs:
            assert record["duration"] > 0
            assert "proc" in record["labels"]

    def test_send_counters_match_trace_totals(self, capture):
        obs, cluster = capture
        counted = sum(
            child.value
            for _labels, child in obs.metrics.get(
                "repro_messages_sent_total"
            ).children()
        )
        assert counted == cluster.trace.message_count(None)


class TestInertness:
    def test_full_trace_identical_with_and_without_obs(self):
        # Message ids come from a process-global counter; reset it so the
        # two runs are byte-comparable (test_sim_network_process idiom).
        import itertools

        from repro.model import events as events_module

        def run_one(obs):
            events_module._message_counter = itertools.count(1)
            return churn_run(4, seed=0, obs=obs).trace.format()

        assert run_one(None) == run_one(Obs())

    def test_counts_run_identical_with_and_without_obs(self):
        plain = churn_run(4, seed=0, trace_level="counts")
        observed = churn_run(4, seed=0, trace_level="counts", obs=Obs())
        assert plain.scheduler.events_run == observed.scheduler.events_run
        assert plain.trace.message_count(None) == observed.trace.message_count(None)
        assert plain.trace.metrics_snapshot() == observed.trace.metrics_snapshot()


class TestDetectorObs:
    def build_pair(self, obs, period=1.0, timeout=4.0):
        scheduler = Scheduler()
        network = Network(scheduler, RunTrace(), delay_model=FixedDelay(0.5), seed=0)
        network.obs = obs
        a = Host(A, network, HeartbeatDetector(network, period, timeout), [A, B])
        b = Host(B, network, HeartbeatDetector(network, period, timeout), [A, B])
        a.start(), b.start()
        return scheduler, network, a, b

    def test_real_crash_is_not_a_false_suspicion(self):
        obs = Obs()
        scheduler, network, a, b = self.build_pair(obs)
        scheduler.at(10.0, b.crash)
        scheduler.run_until(lambda: bool(a.suspected), until=100.0)
        assert a.detector.suspicions() == frozenset({B})
        snap = obs.metrics.snapshot()
        assert snap["counters"]["repro_suspicions_total{proc=a}"] == 1
        assert "repro_false_suspicions_total{proc=a}" not in snap["counters"]
        # Detection latency was emitted retrospectively.
        assert obs.spans.durations("detector.detection")

    def test_spurious_suspicion_counts_as_false(self):
        obs = Obs()
        scheduler = Scheduler()
        network = Network(scheduler, RunTrace(), delay_model=FixedDelay(10.0), seed=0)
        network.obs = obs
        a = Host(A, network, HeartbeatDetector(network, 1.0, 4.0), [A, B])
        b = Host(B, network, HeartbeatDetector(network, 1.0, 4.0), [A, B])
        a.start(), b.start()
        scheduler.run_until(lambda: bool(a.suspected), until=60.0)
        assert B in a.detector.suspicions()
        snap = obs.metrics.snapshot()
        assert snap["counters"]["repro_false_suspicions_total{proc=a}"] >= 1

    def test_probe_rtt_observed_for_live_peers(self):
        obs = Obs()
        scheduler, network, a, b = self.build_pair(obs)
        scheduler.run(until=20.0)
        snap = obs.metrics.snapshot()
        rtt = snap["histograms"]["repro_detector_probe_rtt{proc=a}"]
        assert rtt["count"] > 0
        # FixedDelay(0.5) each way: a probe is answered within one RTT (the
        # span may close early on the peer's own traffic, never late).
        assert 0.0 < rtt["max"] <= 1.0

    def test_suspicions_view_is_read_only_frozenset(self):
        obs = Obs()
        scheduler, network, a, b = self.build_pair(obs)
        assert a.detector.suspicions() == frozenset()
        assert isinstance(a.detector.suspicions(), frozenset)

    def test_detector_works_without_obs(self):
        scheduler, network, a, b = self.build_pair(None)
        scheduler.at(10.0, b.crash)
        scheduler.run_until(lambda: bool(a.suspected), until=100.0)
        assert a.suspected == [B]
        assert a.detector.suspicions() == frozenset({B})


class TestChaosVerdictMetrics:
    def test_chaos_verdict_carries_metric_summary(self):
        from repro.chaos import run_chaos_sync

        obs = Obs()
        verdict = run_chaos_sync(
            n=4, seed=2, duration=1.0, transport="memory", obs=obs
        )
        assert verdict.metrics["spans"]
        assert any(
            name.startswith("repro_trace_events")
            for name in verdict.metrics["gauges"]
        )
        # The summary round-trips through the verdict's JSON form.
        import json

        json.dumps(verdict.to_dict())

    def test_chaos_verdict_metrics_empty_without_obs(self):
        from repro.chaos import run_chaos_sync

        verdict = run_chaos_sync(n=4, seed=1, duration=0.5, transport="memory")
        assert verdict.metrics == {}
