"""The lint CLI: exit codes, report formats, and the repo-wide smoke run."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def write(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


@pytest.fixture()
def dirty_tree(tmp_path: Path) -> Path:
    write(
        tmp_path,
        "clock.py",
        """
        import time

        def stamp():
            return time.time()
        """,
    )
    return tmp_path


def test_exit_zero_on_clean_tree(tmp_path: Path, capsys) -> None:
    write(tmp_path, "ok.py", "X = 1\n")
    assert lint_main([str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_exit_one_on_findings(dirty_tree: Path, capsys) -> None:
    assert lint_main([str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert "DET101" in out
    assert "clock.py" in out


def test_exit_two_on_missing_path(tmp_path: Path, capsys) -> None:
    assert lint_main([str(tmp_path / "nope")]) == 2


def test_json_report_shape(dirty_tree: Path, capsys) -> None:
    assert lint_main([str(dirty_tree), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["files_scanned"] == 1
    assert report["counts"].get("DET101") == 1
    (finding,) = report["findings"]
    assert finding["file"] == "clock.py"
    assert finding["rule"] == "DET101"
    assert finding["severity"] == "error"
    assert finding["line"] > 0


def test_select_and_ignore_filters(dirty_tree: Path, capsys) -> None:
    assert lint_main([str(dirty_tree), "--select", "MUT"]) == 0
    assert lint_main([str(dirty_tree), "--ignore", "DET"]) == 0
    assert lint_main([str(dirty_tree), "--select", "DET101"]) == 1


def test_list_rules(capsys) -> None:
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET101", "DET104", "SCH201", "SCH204", "MUT301", "MUT302"):
        assert rule_id in out


def test_single_file_root(dirty_tree: Path, capsys) -> None:
    assert lint_main([str(dirty_tree / "clock.py")]) == 1


def test_unparseable_file_is_warned_not_silently_skipped(
    tmp_path: Path, capsys
) -> None:
    write(tmp_path, "bad_syntax.py", "def broken(:\n")
    write(tmp_path, "ok.py", "X = 1\n")
    assert lint_main([str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "bad_syntax.py" in captured.err
    assert "NOT checked" in captured.err


def test_repro_cli_lint_subcommand(tmp_path: Path, capsys) -> None:
    write(tmp_path, "ok.py", "X = 1\n")
    assert repro_main(["lint", str(tmp_path)]) == 0
    write(
        tmp_path,
        "bad.py",
        """
        import time
        T = time.time()
        """,
    )
    assert repro_main(["lint", str(tmp_path)]) == 1


def test_module_invocation_on_repo_tree_is_clean() -> None:
    """`python -m repro.lint src/repro` exits 0 on the merged tree."""
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(SRC / "repro")],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_module_invocation_flags_violation_fixture(dirty_tree: Path) -> None:
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(dirty_tree)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 1
    assert "DET101" in proc.stdout


FIXTURES = Path(__file__).parent / "fixtures" / "lint"
ALL_FIXTURES = sorted(p.name for p in FIXTURES.iterdir() if p.is_dir())


@pytest.mark.parametrize("fixture", ALL_FIXTURES)
def test_every_seeded_fixture_exits_nonzero(fixture: str, capsys) -> None:
    """Each seeded violation fixture trips its own rule family via the
    real CLI — a rule regression turns one of these green."""
    assert lint_main([str(FIXTURES / fixture)]) == 1
    out = capsys.readouterr().out
    assert fixture.upper().rstrip("0123456789") in out


def test_sarif_report_shape(dirty_tree: Path, capsys) -> None:
    assert lint_main([str(dirty_tree), "--format", "sarif"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == "2.1.0"
    (run_obj,) = report["runs"]
    assert run_obj["tool"]["driver"]["name"] == "repro.lint"
    rule_ids = [r["id"] for r in run_obj["tool"]["driver"]["rules"]]
    assert "DET101" in rule_ids
    (result,) = run_obj["results"]
    assert result["ruleId"] == "DET101"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "clock.py"
    assert location["region"]["startLine"] > 0


def test_sarif_clean_tree_has_no_results(tmp_path: Path, capsys) -> None:
    write(tmp_path, "ok.py", "X = 1\n")
    assert lint_main([str(tmp_path), "--format", "sarif"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["runs"][0]["results"] == []


def test_baseline_from_json_report_suppresses(dirty_tree: Path, capsys) -> None:
    """The accepted-findings loop: capture the JSON report, feed it back
    as --baseline, and the same findings no longer fail the run."""
    assert lint_main([str(dirty_tree), "--format", "json"]) == 1
    baseline = dirty_tree / "baseline.json"
    baseline.write_text(capsys.readouterr().out, encoding="utf-8")
    assert lint_main([str(dirty_tree), "--baseline", str(baseline)]) == 0
    captured = capsys.readouterr()
    assert "suppressed by baseline" in captured.err


def test_baseline_text_format(dirty_tree: Path, capsys) -> None:
    baseline = dirty_tree / "baseline.txt"
    baseline.write_text("# accepted findings\nclock.py:DET101\n", encoding="utf-8")
    assert lint_main([str(dirty_tree), "--baseline", str(baseline)]) == 0


def test_baseline_with_line_must_match_exactly(dirty_tree: Path, capsys) -> None:
    baseline = dirty_tree / "baseline.txt"
    baseline.write_text("clock.py:9999:DET101\n", encoding="utf-8")
    assert lint_main([str(dirty_tree), "--baseline", str(baseline)]) == 1


def test_baseline_does_not_hide_new_findings(dirty_tree: Path, capsys) -> None:
    assert lint_main([str(dirty_tree), "--format", "json"]) == 1
    baseline = dirty_tree / "baseline.json"
    baseline.write_text(capsys.readouterr().out, encoding="utf-8")
    write(
        dirty_tree,
        "fresh.py",
        """
        import random

        def roll():
            return random.random()
        """,
    )
    assert lint_main([str(dirty_tree), "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out


def test_baseline_missing_file_is_usage_error(dirty_tree: Path, capsys) -> None:
    assert lint_main([str(dirty_tree), "--baseline", "nope.json"]) == 2


def test_repro_cli_passes_baseline_and_sarif(dirty_tree: Path, capsys) -> None:
    assert repro_main(["lint", str(dirty_tree), "--format", "sarif"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == "2.1.0"
    baseline = dirty_tree / "baseline.txt"
    baseline.write_text("clock.py:DET101\n", encoding="utf-8")
    assert (
        repro_main(["lint", str(dirty_tree), "--baseline", str(baseline)]) == 0
    )
