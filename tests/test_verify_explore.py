"""Tests for the bounded-exhaustive interleaving explorer.

Each test enumerates *every* FIFO-respecting schedule of a small
configuration (crash timing, suspicion order, message delivery order) and
asserts the GMP properties on every terminal run — model checking the
actual implementation.
"""

from __future__ import annotations

import pytest

from repro.ids import pid
from repro.verify import Explorer, explore_membership


def describe_failures(result) -> str:
    if result.ok:
        return ""
    path, report = result.violations[0]
    return f"{path}\n" + "\n".join(str(v) for v in report.violations[:3])


class TestExhaustiveSmallConfigs:
    def test_single_member_crash_all_schedules(self):
        result = explore_membership(3, crash_names=["p2"])
        assert result.complete, "expected full exploration"
        assert result.ok, describe_failures(result)
        assert result.terminals > 0
        # Every schedule converges to the same final configuration.
        assert len(result.outcomes) == 1
        (outcome,) = result.outcomes
        assert all(version == 1 for version, _ in outcome)

    def test_coordinator_crash_all_schedules(self):
        result = explore_membership(4, crash_names=["p0"])
        assert result.complete and result.ok, describe_failures(result)
        assert result.terminals >= 1000  # the space is genuinely large
        assert len(result.outcomes) == 1

    def test_spurious_suspicion_of_live_member(self):
        result = explore_membership(3, spurious=[("p0", "p1")])
        assert result.complete and result.ok, describe_failures(result)
        # The wrongly suspected member is excluded in every schedule where
        # the suspicion fires; all outcomes satisfy GMP.
        assert result.terminals > 0

    def test_crossing_spurious_suspicions(self):
        """The Figure 4 family: coordinator and outer suspect each other.
        Every one of the thousands of schedules must stay safe; several
        distinct final configurations are legitimate (who wins the race),
        but each individual run satisfies GMP."""
        result = explore_membership(3, spurious=[("p1", "p0"), ("p0", "p1")])
        assert result.complete and result.ok, describe_failures(result)
        assert result.terminals > 1000
        assert len(result.outcomes) >= 2  # genuinely racy, genuinely safe

    def test_partial_detection_only_one_observer(self):
        # Only p1 ever detects the crash; gossip must carry the belief.
        result = explore_membership(4, crash_names=["p3"], observers=["p1"])
        assert result.complete and result.ok, describe_failures(result)
        assert len(result.outcomes) == 1


class TestBoundedLargerConfigs:
    def test_two_crashes_bounded(self):
        result = explore_membership(
            4, crash_names=["p2", "p3"], max_states=12_000
        )
        # The space exceeds the bound; whatever was explored must be safe.
        assert result.ok, describe_failures(result)
        assert result.terminals > 1000

    def test_coordinator_crash_plus_spurious_bounded(self):
        result = explore_membership(
            4,
            crash_names=["p0"],
            spurious=[("p2", "p3")],
            max_states=12_000,
        )
        assert result.ok, describe_failures(result)


def summary_of(result) -> tuple:
    """The engine-independent face of a result (states is engine-specific)."""
    return (
        result.terminals,
        result.tree_states,
        result.outcomes,
        result.ok,
        result.complete,
    )


class TestEngineEquivalence:
    def test_snapshot_matches_deepcopy_on_figure4(self):
        """The Figure 4 concurrent-reconfigurer race: the snapshot+dedup
        engine must report the exact same schedule tree as the baseline."""
        scenario = dict(n=3, spurious=[("p1", "p0"), ("p0", "p1")])
        deep = explore_membership(**scenario, engine="deepcopy")
        snap = explore_membership(**scenario, engine="snapshot")
        assert summary_of(deep) == summary_of(snap)
        # deepcopy walks the tree 1:1; dedup must do strictly less work.
        assert deep.states == deep.tree_states
        assert snap.states < snap.tree_states

    def test_snapshot_matches_deepcopy_on_crash(self):
        scenario = dict(n=3, crash_names=["p2"])
        deep = explore_membership(**scenario, engine="deepcopy")
        snap = explore_membership(**scenario, engine="snapshot")
        assert summary_of(deep) == summary_of(snap)

    def test_parallel_matches_serial(self):
        scenario = dict(n=3, spurious=[("p1", "p0"), ("p0", "p1")])
        serial = explore_membership(**scenario)
        sharded = explore_membership(**scenario, workers=2)
        assert summary_of(serial) == summary_of(sharded)

    def test_parallel_matches_serial_on_crash(self):
        scenario = dict(n=4, crash_names=["p0"])
        serial = explore_membership(**scenario)
        sharded = explore_membership(**scenario, workers=3)
        assert summary_of(serial) == summary_of(sharded)

    def test_dedup_collapses_symmetric_double_suspicion(self):
        """Two outer members racing to suspect the same victim in a
        5-process group: the schedule tree is millions of nodes, the state
        graph a few hundred — the fingerprint DAG must find that."""
        result = explore_membership(5, spurious=[("p1", "p4"), ("p2", "p4")])
        assert result.complete and result.ok, describe_failures(result)
        assert result.states * 100 < result.tree_states
        assert result.terminals > result.states

    def test_outcomes_are_deterministically_ordered(self):
        scenario = dict(n=3, spurious=[("p1", "p0"), ("p0", "p1")])
        first = explore_membership(**scenario)
        second = explore_membership(**scenario, engine="deepcopy")
        assert isinstance(first.outcomes, tuple)
        assert first.outcomes == second.outcomes  # same order, not just same set

    def test_deepcopy_engine_rejects_workers(self):
        with pytest.raises(ValueError):
            Explorer([pid("a")], engine="deepcopy", workers=2)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Explorer([pid("a")], engine="telepathy")


class TestExplorerMechanics:
    def test_no_events_means_single_trivial_terminal(self):
        result = explore_membership(3)
        assert result.complete and result.ok
        assert result.terminals == 1 and result.states == 1

    def test_width_bound_marks_incomplete(self):
        result = explore_membership(4, crash_names=["p0"], max_width=1)
        # Width 1 = one arbitrary schedule end-to-end.
        assert not result.complete
        assert result.ok
        assert result.terminals == 1

    def test_state_bound_marks_incomplete(self):
        result = explore_membership(4, crash_names=["p0"], max_states=50)
        assert not result.complete

    def test_explorer_accepts_explicit_suspicion_triples(self):
        view = [pid("a"), pid("b"), pid("c")]
        explorer = Explorer(
            view,
            crashes=[pid("c")],
            suspicions=[
                (pid("a"), pid("c"), False),
                (pid("b"), pid("c"), False),
            ],
        )
        result = explorer.run()
        assert result.complete and result.ok

    def test_crash_detected_by_nobody_just_wedges_safely(self):
        # A crash with no observers: nothing can ever be excluded, but no
        # schedule violates safety either.
        result = explore_membership(3, crash_names=["p2"], observers=[])
        assert result.complete and result.ok
        for outcome in result.outcomes:
            assert all(version == 0 for version, _ in outcome)
