"""Unit tests for the failure detector implementations."""

from __future__ import annotations

import random

import pytest

from repro.detectors.heartbeat import HeartbeatDetector, Ping, Pong
from repro.detectors.oracle import OracleDetector
from repro.detectors.scripted import ScriptedDetector
from repro.detectors.swim import LifeguardDetector, Probe, SwimDetector
from repro.ids import pid
from repro.model.events import EventKind
from repro.sim.network import FixedDelay, Network
from repro.sim.process import SimProcess
from repro.sim.scheduler import Scheduler
from repro.sim.trace import RunTrace

A, B, C = pid("a"), pid("b"), pid("c")


class Host(SimProcess):
    """Minimal Suspectable process hosting a detector."""

    def __init__(self, pid_, network, detector, members):
        super().__init__(pid_, network)
        self.detector = detector
        self.members = tuple(members)
        self.suspected: list = []
        detector.attach(self)

    def on_start(self):
        self.detector.start()

    def current_members(self):
        return self.members

    def is_current_member(self, target):
        return target in self.members

    def believes_faulty(self, target):
        return target in self.suspected

    def on_suspect(self, target):
        self.suspected.append(target)

    def on_message(self, sender, payload):
        self.detector.on_message(sender, payload)


@pytest.fixture
def fabric():
    scheduler = Scheduler()
    network = Network(scheduler, RunTrace(), delay_model=FixedDelay(0.5), seed=0)
    return scheduler, network


class TestOracle:
    def test_suspects_crashed_member_after_delay(self, fabric):
        scheduler, network = fabric
        a = Host(A, network, OracleDetector(network, delay=5.0), [A, B])
        b = Host(B, network, OracleDetector(network, delay=5.0), [A, B])
        a.start(), b.start()
        scheduler.at(1.0, b.crash)
        scheduler.run()
        assert a.suspected == [B]
        assert scheduler.now >= 6.0

    def test_never_suspects_live_process(self, fabric):
        scheduler, network = fabric
        a = Host(A, network, OracleDetector(network, delay=1.0), [A, B])
        b = Host(B, network, OracleDetector(network, delay=1.0), [A, B])
        a.start(), b.start()
        scheduler.run(until=100.0)
        assert a.suspected == [] and b.suspected == []

    def test_ignores_irrelevant_crashes(self, fabric):
        scheduler, network = fabric
        a = Host(A, network, OracleDetector(network, delay=1.0), [A, B])
        c = Host(C, network, OracleDetector(network, delay=1.0), [C])
        a.start(), c.start()
        c.crash()
        scheduler.run()
        assert a.suspected == []  # C is not in A's view nor watched

    def test_watched_non_member_is_suspected(self, fabric):
        scheduler, network = fabric
        a = Host(A, network, OracleDetector(network, delay=1.0), [A])
        c = Host(C, network, OracleDetector(network, delay=1.0), [C])
        a.start(), c.start()
        a.detector.watch(C, "awaiting")
        c.crash()
        scheduler.run()
        assert a.suspected == [C]

    def test_crash_before_start_still_detected(self, fabric):
        scheduler, network = fabric
        b = Host(B, network, OracleDetector(network, delay=1.0), [A, B])
        b.crash()
        a = Host(A, network, OracleDetector(network, delay=1.0), [A, B])
        a.start()
        scheduler.run()
        assert a.suspected == [B]

    def test_detector_requires_positive_delay(self, fabric):
        _, network = fabric
        with pytest.raises(ValueError):
            OracleDetector(network, delay=0.0)


class TestScripted:
    def test_fires_only_when_scheduled(self, fabric):
        scheduler, network = fabric
        a = Host(A, network, ScriptedDetector(scheduler), [A, B])
        a.start()
        a.detector.suspect_at(5.0, B)
        scheduler.run()
        assert a.suspected == [B]

    def test_queues_before_start(self, fabric):
        scheduler, network = fabric
        a = Host(A, network, ScriptedDetector(scheduler), [A, B])
        a.detector.suspect_at(5.0, B)
        a.start()
        scheduler.run()
        assert a.suspected == [B]

    def test_does_not_fire_after_stop(self, fabric):
        scheduler, network = fabric
        a = Host(A, network, ScriptedDetector(scheduler), [A, B])
        a.start()
        a.detector.suspect_at(5.0, B)
        a.detector.stop()
        scheduler.run()
        assert a.suspected == []

    def test_suspicion_is_idempotent(self, fabric):
        scheduler, network = fabric
        a = Host(A, network, ScriptedDetector(scheduler), [A, B])
        a.start()
        a.detector.suspect_now(B)
        a.detector.suspect_now(B)
        assert a.suspected == [B]

    def test_never_suspects_self(self, fabric):
        scheduler, network = fabric
        a = Host(A, network, ScriptedDetector(scheduler), [A])
        a.start()
        a.detector.suspect_now(A)
        assert a.suspected == []


class TestHeartbeat:
    def build_pair(self, fabric, period=1.0, timeout=4.0):
        scheduler, network = fabric
        a = Host(A, network, HeartbeatDetector(network, period, timeout), [A, B])
        b = Host(B, network, HeartbeatDetector(network, period, timeout), [A, B])
        a.start(), b.start()
        return scheduler, network, a, b

    def test_live_processes_not_suspected(self, fabric):
        scheduler, network, a, b = self.build_pair(fabric)
        scheduler.run(until=50.0)
        assert a.suspected == [] and b.suspected == []

    def test_crashed_process_suspected_within_timeout(self, fabric):
        scheduler, network, a, b = self.build_pair(fabric)
        scheduler.at(10.0, b.crash)
        scheduler.run_until(lambda: bool(a.suspected), until=100.0)
        assert a.suspected == [B]
        assert scheduler.now <= 10.0 + 4.0 + 2.0  # timeout plus one period

    def test_detector_traffic_is_categorised(self, fabric):
        scheduler, network, a, b = self.build_pair(fabric)
        scheduler.run(until=5.0)
        assert network.trace.message_count("detector") > 0
        assert network.trace.message_count("protocol") == 0

    def test_slow_network_causes_spurious_suspicion(self):
        # Delays beyond the timeout make a *live* process look faulty —
        # the perceived-failure phenomenon of Section 2.
        scheduler = Scheduler()
        network = Network(scheduler, RunTrace(), delay_model=FixedDelay(10.0), seed=0)
        a = Host(A, network, HeartbeatDetector(network, 1.0, 4.0), [A, B])
        b = Host(B, network, HeartbeatDetector(network, 1.0, 4.0), [A, B])
        a.start(), b.start()
        scheduler.run_until(lambda: bool(a.suspected), until=60.0)
        assert B in a.suspected and not b.crashed

    def test_rejects_nonpositive_parameters(self, fabric):
        _, network = fabric
        with pytest.raises(ValueError):
            HeartbeatDetector(network, period=0.0)
        with pytest.raises(ValueError):
            HeartbeatDetector(network, timeout=-1.0)

    def test_ping_consumed_and_ponged(self, fabric):
        scheduler, network, a, b = self.build_pair(fabric)
        consumed = b.detector.on_message(A, Ping(nonce=1))
        assert consumed
        scheduler.run(until=2.0)
        # a pong went back on the wire
        assert any(
            e.message is not None
            and e.proc == B
            and isinstance(e.message.payload, Pong)
            for e in network.trace.events_of_kind(EventKind.SEND)
        )

    def test_start_without_attach_raises(self, fabric):
        _, network = fabric
        detector = HeartbeatDetector(network)
        with pytest.raises(RuntimeError, match="not attached"):
            detector.start()

    def test_stopped_detector_does_not_pong(self, fabric):
        # A quit/excluded member must stop advertising liveness, or it looks
        # alive to the whole group forever.
        scheduler, network, a, b = self.build_pair(fabric)
        scheduler.run(until=3.0)
        b.detector.stop()

        def pongs_from_b():
            return sum(
                1
                for e in network.trace.events_of_kind(EventKind.SEND)
                if e.proc == B
                and e.message is not None
                and isinstance(e.message.payload, Pong)
            )

        before = pongs_from_b()
        consumed = b.detector.on_message(A, Ping(nonce=99))
        assert consumed  # still swallowed, never forwarded to the member
        scheduler.run(until=5.0)
        assert pongs_from_b() == before

    def test_last_heard_pruned_for_departed_members(self, fabric):
        scheduler, network, a, b = self.build_pair(fabric)
        scheduler.run(until=3.0)
        assert B in a.detector._last_heard
        a.members = (A,)  # B leaves the view
        scheduler.run(until=6.0)  # at least one tick with the new view
        assert B not in a.detector._last_heard
        assert a.suspected == []  # departed, not suspected


# --------------------------------------------------------- lifecycle contract

DETECTOR_KINDS = ["oracle", "heartbeat", "swim", "lifeguard", "scripted"]


def make_detector(kind, scheduler, network):
    if kind == "oracle":
        return OracleDetector(network, delay=2.0)
    if kind == "heartbeat":
        return HeartbeatDetector(network, period=1.0, timeout=4.0)
    if kind == "swim":
        return SwimDetector(network, period=1.0, rng=random.Random(7))
    if kind == "lifeguard":
        return LifeguardDetector(network, period=1.0, rng=random.Random(7))
    if kind == "scripted":
        return ScriptedDetector(scheduler)
    raise AssertionError(kind)


def detector_payload(kind):
    """A plausible on-the-wire payload for each detector family."""
    if kind == "heartbeat":
        return Ping(nonce=1)
    if kind in ("swim", "lifeguard"):
        return Probe(nonce=1)
    return object()


class TestLifecycleContract:
    """Every detector honors the same attach/start/stop contract."""

    @pytest.mark.parametrize("kind", DETECTOR_KINDS)
    def test_start_before_attach_raises(self, fabric, kind):
        scheduler, network = fabric
        detector = make_detector(kind, scheduler, network)
        with pytest.raises(RuntimeError, match="not attached"):
            detector.start()

    @pytest.mark.parametrize("kind", DETECTOR_KINDS)
    def test_attach_then_start_is_fine(self, fabric, kind):
        scheduler, network = fabric
        a = Host(A, network, make_detector(kind, scheduler, network), [A, B])
        b = Host(B, network, make_detector(kind, scheduler, network), [A, B])
        a.start(), b.start()
        scheduler.run(until=5.0)
        assert a.suspected == [] and b.suspected == []

    @pytest.mark.parametrize("kind", DETECTOR_KINDS)
    def test_stopped_detector_ignores_late_deliveries(self, fabric, kind):
        # A stopped detector must neither reply to detector traffic (that
        # would advertise liveness forever) nor deliver suspicions.
        scheduler, network = fabric
        a = Host(A, network, make_detector(kind, scheduler, network), [A, B])
        b = Host(B, network, make_detector(kind, scheduler, network), [A, B])
        a.start(), b.start()
        # Stop off the tick/delivery grid (events land on multiples of 0.5)
        # so "sent after the stop" is unambiguous.
        scheduler.run(until=3.3)
        b.detector.stop()
        b.detector.on_message(A, detector_payload(kind))
        scheduler.run(until=6.0)
        replies = [
            e
            for e in network.trace.events_of_kind(EventKind.SEND)
            if e.proc == B and e.time > 3.3
        ]
        assert replies == []
        assert b.suspected == []
