"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.service import MembershipCluster
from repro.ids import ProcessId, pid
from repro.properties import check_gmp, format_report
from repro.sim.network import FixedDelay, Network, UniformDelay
from repro.sim.scheduler import Scheduler
from repro.sim.trace import RunTrace


@pytest.fixture
def scheduler() -> Scheduler:
    return Scheduler()


@pytest.fixture
def trace() -> RunTrace:
    return RunTrace()


@pytest.fixture
def network(scheduler: Scheduler, trace: RunTrace) -> Network:
    return Network(scheduler, trace, delay_model=FixedDelay(1.0), seed=0)


def make_cluster(n: int = 5, seed: int = 0, **kwargs) -> MembershipCluster:
    """A started cluster with deterministic-ish delays."""
    kwargs.setdefault("delay_model", UniformDelay(0.5, 2.0))
    cluster = MembershipCluster.of_size(n, seed=seed, **kwargs)
    cluster.start()
    return cluster


def assert_gmp(cluster: MembershipCluster, liveness: bool = True) -> None:
    """Assert the full GMP specification over a finished run."""
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=liveness)
    assert report.ok, format_report(report)


def names(members) -> list[str]:
    """Names of a ProcessId collection, for readable assertions."""
    return [m.name for m in members]


def p(*parts: str) -> list[ProcessId]:
    """Shorthand: build a ProcessId list from names."""
    return [pid(name) for name in parts]
