"""ASY4xx async atomicity rules: the flow-sensitive race detector."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def write(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def rules_of(result) -> set[str]:
    return {f.rule for f in result.findings}


# ---------------------------------------------------------------------------
# ASY401 — read-check-await-write
# ---------------------------------------------------------------------------


class TestStaleStateRace:
    def test_check_await_write_fires(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            class R:
                async def serve(self, pid):
                    if pid in self._ports:
                        return self._ports[pid]
                    port = await allocate()
                    self._ports[pid] = port
            """,
        )
        result = run_lint(tmp_path)
        asy = [f for f in result.findings if f.rule == "ASY401"]
        assert len(asy) == 1
        assert "_ports" in asy[0].message
        assert asy[0].line == 7

    def test_recheck_after_await_clears(self, tmp_path: Path) -> None:
        """The tcp.serve() repair shape: a fresh condition read after the
        suspension re-validates the state, so the write is safe."""
        write(
            tmp_path,
            "mod.py",
            """
            class R:
                async def serve(self, pid):
                    if pid in self._ports:
                        return self._ports[pid]
                    port = await allocate()
                    if pid in self._ports:
                        return self._ports[pid]
                    self._ports[pid] = port
            """,
        )
        assert "ASY401" not in rules_of(run_lint(tmp_path))

    def test_write_without_prior_check_is_clean(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            class R:
                async def bump(self):
                    await tick()
                    self.counter = 1
            """,
        )
        assert "ASY401" not in rules_of(run_lint(tmp_path))

    def test_write_before_await_is_clean(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            class R:
                async def mark(self):
                    if self.busy:
                        return
                    self.busy = True
                    await work()
            """,
        )
        assert "ASY401" not in rules_of(run_lint(tmp_path))

    def test_branch_avoiding_await_is_clean_branch_sensitive(
        self, tmp_path: Path
    ) -> None:
        """Only the awaited path invalidates the check: writing on the
        non-awaiting branch is fine."""
        write(
            tmp_path,
            "mod.py",
            """
            class R:
                async def route(self, fast):
                    if self.slot is None:
                        if fast:
                            self.slot = 1
                        else:
                            await slow()
            """,
        )
        assert "ASY401" not in rules_of(run_lint(tmp_path))

    def test_loop_carried_staleness_fires(self, tmp_path: Path) -> None:
        """The await on a previous loop iteration also invalidates the
        check — the fixpoint propagates facts around the back edge."""
        write(
            tmp_path,
            "mod.py",
            """
            class R:
                async def drain(self):
                    while self.pending:
                        await flush()
                        self.pending = []
            """,
        )
        result = run_lint(tmp_path)
        assert "ASY401" in rules_of(result)

    def test_parameter_object_attrs_exempt(self, tmp_path: Path) -> None:
        """Only ``self`` attributes are shared instance state; channel
        objects passed as parameters are the caller's concern (the tcp
        _drain/_read_acks shape)."""
        write(
            tmp_path,
            "mod.py",
            """
            class R:
                async def drain(self, ch):
                    if ch.cursor < len(ch.unacked):
                        await send()
                        ch.cursor += 1
            """,
        )
        assert "ASY401" not in rules_of(run_lint(tmp_path))

    def test_allowlist_suppresses(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            class R:
                async def serve(self, pid):
                    if pid in self._ports:
                        return
                    await allocate()
                    self._ports[pid] = 1  # lint: allow[atomicity]
            """,
        )
        assert "ASY401" not in rules_of(run_lint(tmp_path))


# ---------------------------------------------------------------------------
# ASY402 — fire-and-forget tasks
# ---------------------------------------------------------------------------


class TestFireAndForget:
    def test_bare_create_task_fires(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            import asyncio

            def kick(loop, coro):
                loop.create_task(coro)
            """,
        )
        assert "ASY402" in rules_of(run_lint(tmp_path))

    def test_get_running_loop_chain_fires(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            import asyncio

            def kick(coro):
                asyncio.get_running_loop().create_task(coro)
            """,
        )
        assert "ASY402" in rules_of(run_lint(tmp_path))

    def test_retained_task_is_clean(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            import asyncio

            def kick(tasks, coro):
                task = asyncio.get_running_loop().create_task(coro)
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            """,
        )
        assert "ASY402" not in rules_of(run_lint(tmp_path))

    def test_awaited_task_is_clean(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            import asyncio

            async def kick(coro):
                await asyncio.get_running_loop().create_task(coro)
            """,
        )
        assert "ASY402" not in rules_of(run_lint(tmp_path))


# ---------------------------------------------------------------------------
# ASY403 — asyncio primitives at import time
# ---------------------------------------------------------------------------


class TestImportTimePrimitives:
    def test_module_class_and_default_scopes_fire(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            import asyncio

            GATE = asyncio.Event()

            class C:
                lock = asyncio.Lock()

            def f(q=asyncio.Queue()):
                return q
            """,
        )
        result = run_lint(tmp_path)
        asy = [f for f in result.findings if f.rule == "ASY403"]
        assert len(asy) == 3

    def test_primitive_inside_coroutine_is_clean(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            import asyncio

            async def f():
                gate = asyncio.Event()
                await gate.wait()

            def g():
                return asyncio.Lock()
            """,
        )
        assert "ASY403" not in rules_of(run_lint(tmp_path))


# ---------------------------------------------------------------------------
# ASY404 — blocking calls in coroutines
# ---------------------------------------------------------------------------


class TestBlockingCalls:
    def test_time_sleep_in_coroutine_fires(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            import time

            async def f():
                time.sleep(1)  # lint: allow[DET101]
            """,
        )
        assert "ASY404" in rules_of(run_lint(tmp_path))

    def test_run_until_complete_in_coroutine_fires(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            async def f(loop, coro):
                loop.run_until_complete(coro)
            """,
        )
        assert "ASY404" in rules_of(run_lint(tmp_path))

    def test_sync_function_is_exempt(self, tmp_path: Path) -> None:
        write(
            tmp_path,
            "mod.py",
            """
            import time

            def f():
                time.sleep(1)  # lint: allow[DET101]
            """,
        )
        assert "ASY404" not in rules_of(run_lint(tmp_path))

    def test_nested_sync_def_inside_coroutine_exempt(self, tmp_path: Path) -> None:
        """walk_scope prunes nested defs: the blocking call belongs to the
        nested sync function, which may legitimately run in an executor."""
        write(
            tmp_path,
            "mod.py",
            """
            import time

            async def f(loop):
                def blocking():
                    time.sleep(1)  # lint: allow[DET101]
                await loop.run_in_executor(None, blocking)
            """,
        )
        assert "ASY404" not in rules_of(run_lint(tmp_path))


# ---------------------------------------------------------------------------
# fixtures + the repaired tree
# ---------------------------------------------------------------------------


class TestSeededFixtures:
    def test_each_asy_fixture_fires_its_rule(self) -> None:
        for rule_id in ("ASY401", "ASY402", "ASY403", "ASY404"):
            result = run_lint(FIXTURES / rule_id.lower())
            assert rule_id in rules_of(result), rule_id
            assert not result.ok

    def test_repro_tree_is_asy_clean(self) -> None:
        src = Path(__file__).parent.parent / "src" / "repro"
        result = run_lint(src)
        asy = [f for f in result.findings if f.rule.startswith("ASY")]
        assert asy == []
