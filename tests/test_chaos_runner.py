"""End-to-end tests for the chaos harness (:mod:`repro.chaos.runner`)."""

from __future__ import annotations

import json

from repro.chaos import ChaosVerdict, FaultPlan, run_chaos_sync
from repro.cli import main


class TestVerdict:
    def test_ok_requires_agreement_properties_and_zero_loss(self):
        verdict = ChaosVerdict(seed=0, n=4, transport="tcp", wire="json", duration=1.0)
        verdict.agreement = True
        verdict.properties_ok = True
        assert verdict.ok
        verdict.frame_loss = 1
        assert not verdict.ok
        verdict.frame_loss = 0
        verdict.agreement = False
        assert not verdict.ok

    def test_to_dict_is_json_serializable(self):
        verdict = ChaosVerdict(seed=0, n=4, transport="tcp", wire="json", duration=1.0)
        payload = json.loads(json.dumps(verdict.to_dict()))
        assert set(payload) >= {
            "ok",
            "seed",
            "agreement",
            "properties_ok",
            "frame_loss",
            "plan",
            "final_view",
        }


class TestLiveRuns:
    def test_tcp_cluster_survives_generated_plan(self):
        verdict = run_chaos_sync(n=4, seed=1, duration=2.0, transport="tcp")
        assert verdict.agreement, verdict.to_dict()
        assert verdict.properties_ok, verdict.violations
        assert verdict.frame_loss == 0
        assert verdict.ok
        # The verdict carries the full reproducible schedule.
        expected = FaultPlan.generate(
            1, [f"n{i}" for i in range(4)], 2.0, transport="tcp"
        )
        assert verdict.plan == expected.to_dict()
        # Crash-restart happened: the victim's new incarnation is a member
        # and exactly one survivor was partitioned out.
        (crash,) = expected.crashes
        assert f"{crash.victim}#1" in verdict.final_view
        assert len(verdict.final_view) == 3
        assert verdict.transport_stats.get("frames_acked", 0) > 0

    def test_memory_cluster_survives_generated_plan(self):
        verdict = run_chaos_sync(n=4, seed=1, duration=2.0, transport="memory")
        assert verdict.ok, verdict.to_dict()
        assert verdict.transport_stats == {}  # no channel layer to report


class TestCli:
    def test_plan_only_is_deterministic_and_fast(self, capsys):
        assert main(["chaos", "--plan-only", "--seed", "9"]) == 0
        first = capsys.readouterr().out
        assert main(["chaos", "--plan-only", "--seed", "9"]) == 0
        assert capsys.readouterr().out == first
        plan = json.loads(first)
        assert plan["seed"] == 9
        assert plan["crashes"] and plan["partitions"] and plan["rules"]

    def test_chaos_run_exit_code_and_out_file(self, capsys, tmp_path):
        out = tmp_path / "verdict.json"
        code = main(
            [
                "chaos",
                "--n",
                "4",
                "--seed",
                "1",
                "--duration",
                "2.0",
                "--transport",
                "memory",
                "--out",
                str(out),
            ]
        )
        printed = json.loads(capsys.readouterr().out)
        saved = json.loads(out.read_text())
        assert code == 0 and printed["ok"] and saved == printed
