"""Unit tests for Determine / GetStable / ProposalsForVer (Figure 6).

These are the trickiest lines of the protocol; every branch of the figure
gets a direct test, plus the typo-interpretations documented in DESIGN.md §4
and property tests over random response sets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.determine import (
    DetermineResult,
    PhaseOneResponse,
    determine,
    get_stable,
    proposals_for_ver,
)
from repro.core.messages import Op, Plan, add, remove
from repro.errors import ProtocolInvariantError, ViewDivergenceError
from repro.ids import pid

M, P, Q, R, S = (pid(n) for n in "mpqrs")
VIEW = (M, P, Q, R, S)


def resp(proc, version=0, seq=(), plans=()):
    return PhaseOneResponse(proc=proc, version=version, seq=tuple(seq), plans=tuple(plans))


def no_next(skip=None):
    return None


class TestProposalsForVer:
    def test_collects_by_version(self):
        responses = [
            resp(Q, plans=[Plan(remove(S), M, 1)]),
            resp(R, plans=[Plan(remove(S), M, 1), Plan(remove(M), P, 2)]),
        ]
        found = proposals_for_ver(responses, 1)
        assert found == {remove(S): [M]}

    def test_placeholders_ignored(self):
        responses = [resp(Q, plans=[Plan(None, P, None)])]
        assert proposals_for_ver(responses, 1) == {}

    def test_distinct_proposers_accumulate(self):
        responses = [
            resp(Q, plans=[Plan(remove(S), M, 1)]),
            resp(R, plans=[Plan(remove(S), P, 1)]),
        ]
        found = proposals_for_ver(responses, 1)
        assert set(found[remove(S)]) == {M, P}


class TestGetStable:
    def test_junior_proposer_wins(self):
        proposals = {remove(S): [M], remove(M): [P]}
        assert get_stable(proposals, VIEW) == remove(M)

    def test_senior_preference_inverts(self):
        proposals = {remove(S): [M], remove(M): [P]}
        assert get_stable(proposals, VIEW, prefer="senior") == remove(S)

    def test_unknown_coordinator_is_maximally_senior(self):
        gone = pid("gone")
        proposals = {remove(S): [gone], remove(M): [Q]}
        assert get_stable(proposals, VIEW) == remove(M)

    def test_empty_proposals_rejected(self):
        with pytest.raises(ProtocolInvariantError):
            get_stable({}, VIEW)

    def test_more_than_two_proposals_rejected(self):
        proposals = {remove(S): [M], remove(M): [P], remove(Q): [R]}
        with pytest.raises(ProtocolInvariantError):
            get_stable(proposals, VIEW)

    def test_invalid_preference_rejected(self):
        with pytest.raises(ValueError):
            get_stable({remove(S): [M]}, VIEW, prefer="random")


class TestDetermineAllCurrent:
    """The L = S = 0 branch: every respondent at the initiator's version."""

    def test_no_candidates_proposes_mgr_removal(self):
        responses = [resp(Q), resp(R), resp(S)]
        result = determine(Q, responses, VIEW, M, no_next)
        assert result.ops == (remove(M),) and result.version == 1
        assert result.candidate_count == 0

    def test_single_candidate_propagated(self):
        responses = [
            resp(Q, plans=[Plan(remove(S), M, 1)]),
            resp(R),
        ]
        result = determine(Q, responses, VIEW, M, no_next)
        assert result.ops == (remove(S),)
        assert result.candidate_count == 1

    def test_two_candidates_resolved_by_get_stable(self):
        responses = [
            resp(Q, plans=[Plan(remove(S), M, 1)]),
            resp(R, plans=[Plan(remove(M), P, 1)]),
        ]
        result = determine(Q, responses, VIEW, M, no_next)
        assert result.ops == (remove(M),)  # junior proposer P wins
        assert result.candidate_count == 2

    def test_invis_comes_from_get_next(self):
        responses = [resp(Q), resp(R)]
        result = determine(Q, responses, VIEW, M, lambda skip: remove(S))
        assert result.invis == remove(S)


class TestDetermineIncomplete:
    """The L != 0 / S != 0 branches: respondents straddle versions."""

    def test_ahead_respondent_donates_missing_op(self):
        # R already installed version 1 (removing S); Q must complete it.
        responses = [
            resp(Q, version=0, seq=[]),
            resp(R, version=1, seq=[remove(S)]),
        ]
        result = determine(Q, responses, VIEW, M, no_next)
        assert result.ops == (remove(S),) and result.version == 1

    def test_behind_respondent_receives_initiators_op(self):
        # Q installed version 1; straggler R did not — re-commit it.
        responses = [
            resp(Q, version=1, seq=[remove(S)]),
            resp(R, version=0, seq=[]),
        ]
        result = determine(Q, responses, VIEW, M, no_next)
        assert result.ops == (remove(S),) and result.version == 1

    def test_one_version_gap_bridges_only_missing_op(self):
        responses = [
            resp(Q, version=2, seq=[remove(S), remove(R)]),
            resp(P, version=1, seq=[remove(S)]),
        ]
        result = determine(Q, responses, VIEW, M, no_next)
        assert result.ops == (remove(R),) and result.version == 2

    def test_two_version_gap_yields_multi_op_proposal(self):
        # Footnote 11: the proposal may be a sequence of events — it must
        # carry every operation the oldest respondent is missing.  The
        # initiator sits mid-window (Proposition 5.1 bounds respondents to
        # one version either side of it).
        responses = [
            resp(Q, version=1, seq=[remove(S)]),
            resp(P, version=2, seq=[remove(S), remove(R)]),
            resp(pid("x"), version=0, seq=[]),
        ]
        view = VIEW + (pid("x"),)
        result = determine(Q, responses, view, M, no_next)
        assert result.ops == (remove(S), remove(R)) and result.version == 2

    def test_contingent_proposal_for_next_version_becomes_invis(self):
        responses = [
            resp(Q, version=0, seq=[]),
            resp(R, version=1, seq=[remove(S)], plans=[Plan(remove(P), M, 2)]),
        ]
        result = determine(Q, responses, VIEW, M, no_next)
        assert result.invis == remove(P)

    def test_two_contingent_proposals_resolved_by_get_stable(self):
        responses = [
            resp(Q, version=1, seq=[remove(S)], plans=[Plan(remove(P), M, 2)]),
            resp(R, version=1, seq=[remove(S)], plans=[Plan(remove(M), Q, 2)]),
            resp(P, version=0, seq=[]),
        ]
        result = determine(P, responses, VIEW, M, no_next)
        # Q is junior to M, so Q's contingent proposal could have committed.
        assert result.invis == remove(M)


class TestDetermineRejections:
    def test_version_spread_beyond_window_rejected(self):
        responses = [resp(Q, version=0), resp(R, version=2, seq=[remove(S), remove(P)])]
        with pytest.raises(ProtocolInvariantError):
            determine(Q, responses, VIEW, M, no_next)

    def test_initiator_must_be_among_responses(self):
        with pytest.raises(ProtocolInvariantError):
            determine(Q, [resp(R)], VIEW, M, no_next)

    def test_empty_responses_rejected(self):
        with pytest.raises(ProtocolInvariantError):
            determine(Q, [], VIEW, M, no_next)

    def test_non_prefix_seqs_rejected(self):
        responses = [
            resp(Q, version=1, seq=[remove(S)]),
            resp(R, version=1, seq=[remove(P)]),
        ]
        with pytest.raises(ViewDivergenceError):
            determine(Q, responses, VIEW, M, no_next)

    def test_version_seq_mismatch_rejected(self):
        responses = [resp(Q, version=2, seq=[remove(S)])]
        with pytest.raises(ProtocolInvariantError):
            determine(Q, responses, VIEW, M, no_next)


class TestDetermineProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        ahead=st.booleans(),
        straggler=st.booleans(),
        n_respondents=st.integers(1, 4),
        with_plan=st.booleans(),
    )
    def test_result_always_reaches_max_version(
        self, ahead, straggler, n_respondents, with_plan
    ):
        """Whatever the mix, the proposal completes the highest version seen
        (Proposition 5.2: the last r-defined view plus one)."""
        others = [P, R, S][:n_respondents]
        base_seq = [remove(pid("z"))] if (ahead or straggler) else []
        view = list(VIEW) + [pid("z")]
        responses = [resp(Q, version=0, seq=[])]
        max_version = 0
        for i, proc in enumerate(others):
            if ahead and i == 0:
                responses.append(resp(proc, version=1, seq=base_seq))
                max_version = 1
            else:
                plans = [Plan(remove(S), M, 1)] if with_plan else []
                responses.append(resp(proc, version=0, seq=[], plans=plans))
        result = determine(Q, responses, tuple(view), M, no_next)
        versions = [r.version for r in responses]
        if max(versions) > min(versions):
            # Completing an in-flight version: exactly bridge the spread.
            assert result.version == max(versions)
            assert len(result.ops) == max(versions) - min(versions)
        else:
            # Everyone current: create the next version with one operation.
            assert result.version == max(versions) + 1
            assert len(result.ops) == 1
