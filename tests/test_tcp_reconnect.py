"""Regression tests for the hardened TCP channel layer.

The seed's ``_drain`` silently dropped any frame that hit a dead connection
— a frame sent while the receiver's server restarted was simply gone.  These
tests pin the fix: the channel retries (reconnect + resend of the
unacknowledged suffix) until frames are acknowledged or the peer is declared
dead, and the receiver's high-water mark collapses retransmissions and
injected duplicates to exactly-once in-order delivery.
"""

from __future__ import annotations

import asyncio

from repro.aio.scheduler import AioScheduler
from repro.aio.tcp import TcpNetwork
from repro.chaos import FaultInjector, FaultPlan, FaultRule
from repro.core.messages import UpdateOk
from repro.ids import pid
from repro.sim.process import SimProcess

A, B = pid("a"), pid("b")


def run(coro):
    return asyncio.run(coro)


class Echo(SimProcess):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def on_message(self, sender, payload):
        self.received.append((sender, payload))


async def _wait_for(predicate, timeout=10.0, poll=0.01):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(poll)
    return predicate()


class TestServerRestart:
    def test_frames_sent_during_restart_survive_in_order(self):
        """The headline regression: a server bounce mid-stream loses nothing."""

        async def scenario():
            network = TcpNetwork(AioScheduler())
            Echo(A, network)
            b = Echo(B, network)
            await network.start()
            for version in range(1, 6):
                network.send(A, B, UpdateOk(version=version))
            assert await _wait_for(lambda: len(b.received) == 5)

            await network.close_server(B)
            # The receiver is down: these frames must queue, not vanish.
            for version in range(6, 16):
                network.send(A, B, UpdateOk(version=version))
            await asyncio.sleep(0.1)
            assert len(b.received) == 5

            await network.serve(B)
            assert await _wait_for(lambda: len(b.received) == 15)
            assert await network.wait_quiet(timeout=5.0)
            await network.stop()
            return b.received, network.stats

        received, stats = run(scenario())
        assert [payload.version for _, payload in received] == list(range(1, 16))
        assert stats.reconnects >= 1
        assert stats.frames_acked >= 15

    def test_send_with_no_server_at_all_queues_until_serve(self):
        """First send races the receiver's (re)start: no port yet, no loss."""

        async def scenario():
            network = TcpNetwork(AioScheduler())
            Echo(A, network)
            b = Echo(B, network)
            await network.start()
            await network.close_server(B)
            for version in range(1, 4):
                network.send(A, B, UpdateOk(version=version))
            await asyncio.sleep(0.1)
            await network.serve(B)
            assert await _wait_for(lambda: len(b.received) == 3)
            await network.stop()
            return [payload.version for _, payload in b.received]

        assert run(scenario()) == [1, 2, 3]


class TestDeadPeer:
    def test_frames_to_crashed_peer_are_abandoned_not_retried(self):
        async def scenario():
            network = TcpNetwork(AioScheduler())
            Echo(A, network)
            b = Echo(B, network)
            await network.start()
            b.crash()  # notify_crash -> mark_dead: the channel must give up
            network.send(A, B, UpdateOk(version=1))
            assert await _wait_for(
                lambda: network.stats.frames_abandoned_dead >= 1
            )
            assert network.pending_frames() == {}
            await network.stop()
            return b.received

        assert run(scenario()) == []


class TestStopHygiene:
    def test_stop_clears_state_and_network_is_restartable(self):
        async def scenario():
            network = TcpNetwork(AioScheduler())
            Echo(A, network)
            b = Echo(B, network)
            await network.start()
            network.send(A, B, UpdateOk(version=1))
            assert await _wait_for(lambda: len(b.received) == 1)

            await network.stop()
            # The seed leaked _outboxes and _ports here; the channel layer
            # must come back empty.
            assert network._ports == {}
            assert network._channels == {}
            assert network._writers == {}
            assert network._servers == {}

            await network.start()
            network.send(A, B, UpdateOk(version=2))
            assert await _wait_for(lambda: len(b.received) == 2)
            await network.stop()
            return [payload.version for _, payload in b.received]

        assert run(scenario()) == [1, 2]


class TestExactlyOnce:
    def test_injected_duplicates_collapse_to_exactly_once(self):
        """Wire-level duplicates (chaos or retransmission) never reach the
        process twice: the receiver's high-water mark absorbs them."""

        async def scenario():
            network = TcpNetwork(AioScheduler())
            Echo(A, network)
            b = Echo(B, network)
            plan = FaultPlan(seed=0)
            plan.add_rule(FaultRule(kind="duplicate"))
            FaultInjector(plan, network).install()
            await network.start()
            for version in range(1, 11):
                network.send(A, B, UpdateOk(version=version))
            assert await _wait_for(lambda: len(b.received) >= 10)
            await network.wait_quiet(timeout=5.0)
            await asyncio.sleep(0.05)  # let any straggler duplicate land
            await network.stop()
            return [payload.version for _, payload in b.received], network.stats

        versions, stats = run(scenario())
        assert versions == list(range(1, 11))
        assert stats.injected_duplicates == 10
        assert stats.duplicates_dropped >= 10
