"""Equivalence of the O(1) hot-path state against seed-implementation scans.

``LocalState`` replaced full-view scans and per-apply copies with cached
structures (:class:`ViewImage` position index, the memoized successor map,
the sorted-faulty tuple).  ``LocalState.shadow_validate`` re-derives every
cached structure with the original full scans at each mutation and asserts
agreement.  These tests run the structurally richest workload (churn: join
+ junior crash + coordinator crash) with the shadow on and off and demand
byte-identical FULL traces — the optimized bookkeeping must be observably
invisible.
"""

from __future__ import annotations

import re

import pytest

from repro.core.state import LocalState, ViewImage
from repro.ids import pid
from repro.workloads.failures import churn_run


@pytest.fixture
def shadow():
    LocalState.shadow_validate = True
    try:
        yield
    finally:
        LocalState.shadow_validate = False


def canonical_trace(cluster) -> list[str]:
    # msg_id is a process-global counter (depends on how many simulations
    # ran before in this interpreter) — strip it, keep everything else.
    return [
        re.sub(r"\bm\d+\[", "m[", f"{e.time:.9f}|{e}") for e in cluster.trace
    ]


class TestShadowEquivalence:
    def test_churn_trace_byte_identical_with_shadow_validation(self, shadow):
        # The shadow asserts at every note_faulty/note_operating/apply; a
        # completed run means the incremental caches never diverged from
        # the full-scan recomputation.
        with_shadow = canonical_trace(churn_run(8, seed=0))
        LocalState.shadow_validate = False
        without = canonical_trace(churn_run(8, seed=0))
        assert with_shadow == without

    def test_shadow_off_by_default(self):
        assert LocalState.shadow_validate is False

    def test_shadow_catches_corrupted_cache(self, shadow):
        a, b, c = pid("a"), pid("b"), pid("c")
        s = LocalState(me=a, view=[a, b, c])
        s.note_faulty(b)
        # Corrupt the cached ordering the way a bookkeeping bug would.
        s._faulty_tuple = (c,)
        with pytest.raises(AssertionError, match="diverged"):
            s._shadow_check()


class TestViewImageSharing:
    def test_successor_images_are_shared(self):
        from repro.core.messages import remove

        a, b, c = pid("a"), pid("b"), pid("c")
        image = ViewImage((a, b, c))
        op = remove(b)
        assert image.child(op) is image.child(op)

    def test_pickle_roundtrip_drops_memo(self):
        import pickle

        a, b = pid("a"), pid("b")
        image = ViewImage((a, b))
        clone = pickle.loads(pickle.dumps(image))
        assert clone.members == image.members
        assert clone.index == image.index
        assert clone._children == {}
