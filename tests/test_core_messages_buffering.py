"""Unit tests for wire messages, plans, rounds, and future-view buffering."""

from __future__ import annotations

import pytest

from repro.core.buffering import FutureViewBuffer, version_of
from repro.core.messages import (
    Commit,
    Interrogate,
    Invite,
    Op,
    Plan,
    Propose,
    ReconfigCommit,
    add,
    remove,
    is_reconfiguration_message,
)
from repro.core.rounds import ReconfigPhase, ReconfigRound, UpdateRound
from repro.ids import pid

A, B, C, D = (pid(n) for n in "abcd")


class TestOps:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            Op("banish", A)

    def test_predicates(self):
        assert remove(A).is_remove and not remove(A).is_add
        assert add(A).is_add and not add(A).is_remove

    def test_ops_are_value_types(self):
        assert remove(A) == Op("remove", A)
        assert len({remove(A), remove(A), add(A)}) == 2


class TestPlans:
    def test_placeholder_detection(self):
        assert Plan(None, A, None).is_placeholder
        assert not Plan(remove(B), A, 1).is_placeholder

    def test_str_renders_question_marks(self):
        assert "?" in str(Plan(None, A, None))


class TestReconfigClassification:
    @pytest.mark.parametrize(
        "payload,expected",
        [
            (Interrogate(hi_faulty=()), True),
            (Propose(ops=(remove(A),), version=1, invis=None), True),
            (ReconfigCommit(ops=(remove(A),), version=1, invis=None), True),
            (Invite(remove(A), 1), False),
            (Commit(remove(A), 1, None), False),
        ],
    )
    def test_is_reconfiguration_message(self, payload, expected):
        assert is_reconfiguration_message(payload) is expected

    def test_propose_final_op(self):
        proposal = Propose(ops=(remove(A), remove(B)), version=2, invis=None)
        assert proposal.final_op == remove(B)


class TestVersionOf:
    def test_versioned_payloads(self):
        assert version_of(Invite(remove(A), 3)) == 3
        assert version_of(Commit(remove(A), 4, None)) == 4
        assert version_of(ReconfigCommit(ops=(remove(A),), version=5, invis=None)) == 5

    def test_unversioned_payload_is_none(self):
        assert version_of("not a protocol message") is None


class TestFutureViewBuffer:
    def test_hold_and_release_in_version_order(self):
        buffer = FutureViewBuffer()
        buffer.hold(A, Invite(remove(B), 3))
        buffer.hold(A, Invite(remove(C), 2))
        released = list(buffer.release(1))
        assert [version_of(m) for _, m in released] == [2]
        released = list(buffer.release(2))
        assert [version_of(m) for _, m in released] == [3]

    def test_stale_messages_dropped(self):
        buffer = FutureViewBuffer()
        buffer.hold(A, Invite(remove(B), 2))
        assert list(buffer.release(5)) == []
        assert len(buffer) == 0

    def test_unversioned_payload_rejected(self):
        with pytest.raises(ValueError):
            FutureViewBuffer().hold(A, "junk")

    def test_drop_from_sender(self):
        buffer = FutureViewBuffer()
        buffer.hold(A, Invite(remove(B), 2))
        buffer.hold(C, Invite(remove(B), 2))
        buffer.drop_from(A)
        released = list(buffer.release(1))
        assert [sender for sender, _ in released] == [C]

    def test_consecutive_versions_release_together(self):
        buffer = FutureViewBuffer()
        buffer.hold(A, Commit(remove(B), 2, None))
        buffer.hold(A, Commit(remove(C), 3, None))
        # Caller at version 1: only version 2 is applicable; after applying
        # it the caller would call release(2) for version 3.
        assert len(list(buffer.release(1))) == 1
        assert len(list(buffer.release(2))) == 1


class TestUpdateRound:
    def test_resolution_by_oks(self):
        round_ = UpdateRound(op=remove(C), version=1, pending={A, B})
        round_.record_ok(A)
        assert not round_.resolved
        round_.record_ok(B)
        assert round_.resolved and round_.ok_count() == 3

    def test_resolution_by_faults(self):
        round_ = UpdateRound(op=remove(C), version=1, pending={A, B})
        round_.record_faulty(A)
        round_.record_ok(B)
        assert round_.resolved and round_.ok_count() == 2

    def test_ok_from_unexpected_sender_ignored(self):
        round_ = UpdateRound(op=remove(C), version=1, pending={A})
        round_.record_ok(D)
        assert not round_.resolved and round_.ok_count() == 1


class TestReconfigRound:
    def test_majority_fixed_at_start(self):
        round_ = ReconfigRound(
            phase=ReconfigPhase.INTERROGATE, view_size=7, pending={A, B}
        )
        assert round_.majority() == 4

    def test_phase_counts_include_initiator(self):
        from repro.core.determine import PhaseOneResponse

        round_ = ReconfigRound(
            phase=ReconfigPhase.INTERROGATE, view_size=5, pending={A}
        )
        round_.record_response(PhaseOneResponse(A, 0, (), ()))
        assert round_.phase_one_count() == 2
        assert round_.resolved

    def test_propose_oks_counted_separately(self):
        round_ = ReconfigRound(
            phase=ReconfigPhase.PROPOSE, view_size=5, pending={A, B}
        )
        round_.record_propose_ok(A)
        round_.record_faulty(B)
        assert round_.resolved and round_.phase_two_count() == 2
