"""Unit tests for consistent cuts and happens-before reconstruction."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.ids import pid
from repro.model.causality import CausalOrder, VectorClock
from repro.model.cuts import Cut, cut_leq, cut_ll, is_consistent
from repro.model.events import Event, EventKind, MessageRecord
from repro.model.history import history_of

A, B, C = pid("a"), pid("b"), pid("c")


def build_message_run():
    """a sends m1 to b; b sends m2 to c.  Returns the event list."""
    m1 = MessageRecord(sender=A, receiver=B, payload="m1")
    m2 = MessageRecord(sender=B, receiver=C, payload="m2")
    return [
        Event(proc=A, kind=EventKind.START, index=0),
        Event(proc=B, kind=EventKind.START, index=0),
        Event(proc=C, kind=EventKind.START, index=0),
        Event(proc=A, kind=EventKind.SEND, index=1, peer=B, message=m1),
        Event(proc=B, kind=EventKind.RECV, index=1, peer=A, message=m1),
        Event(proc=B, kind=EventKind.SEND, index=2, peer=C, message=m2),
        Event(proc=C, kind=EventKind.RECV, index=1, peer=B, message=m2),
    ]


def histories(events):
    procs = {e.proc for e in events}
    return {p: history_of(events, p) for p in procs}


class TestConsistency:
    def test_full_run_is_consistent(self):
        events = build_message_run()
        cut = Cut({A: 2, B: 3, C: 2})
        assert is_consistent(cut, histories(events))

    def test_recv_without_send_is_inconsistent(self):
        events = build_message_run()
        # b's RECV included but a's SEND not.
        cut = Cut({A: 1, B: 2, C: 1})
        assert not is_consistent(cut, histories(events))

    def test_send_without_recv_is_consistent(self):
        events = build_message_run()
        cut = Cut({A: 2, B: 1, C: 1})
        assert is_consistent(cut, histories(events))

    def test_transitive_inconsistency(self):
        events = build_message_run()
        # c's RECV of m2 needs b's SEND which needs b's RECV of m1...
        cut = Cut({A: 2, B: 1, C: 2})
        assert not is_consistent(cut, histories(events))

    def test_empty_cut_is_consistent(self):
        events = build_message_run()
        assert is_consistent(Cut({}), histories(events))

    def test_orphan_recv_raises(self):
        orphan = MessageRecord(sender=A, receiver=B, payload="x")
        events = [
            Event(proc=B, kind=EventKind.START, index=0),
            Event(proc=B, kind=EventKind.RECV, index=1, peer=A, message=orphan),
        ]
        with pytest.raises(TraceError):
            is_consistent(Cut({B: 2}), histories(events))


class TestCutOrderings:
    def test_leq_reflexive(self):
        cut = Cut({A: 1, B: 2})
        assert cut_leq(cut, cut)

    def test_leq_pointwise(self):
        assert cut_leq(Cut({A: 1}), Cut({A: 2, B: 1}))
        assert not cut_leq(Cut({A: 3}), Cut({A: 2}))

    def test_ll_strict_everywhere(self):
        assert cut_ll(Cut({A: 1, B: 1}), Cut({A: 2, B: 2}))
        assert not cut_ll(Cut({A: 1, B: 1}), Cut({A: 2, B: 1}))

    def test_ll_exempts_terminated_histories(self):
        events = build_message_run()
        hist = histories(events)
        # A's full history has 2 events; a cut already containing all of A
        # cannot strictly extend there and is exempted.
        assert cut_ll(Cut({A: 2, B: 1, C: 1}), Cut({A: 2, B: 2, C: 2}), hist)

    def test_includes(self):
        cut = Cut({A: 2})
        events = build_message_run()
        a_send = events[3]
        assert cut.includes(a_send)
        assert not Cut({A: 1}).includes(a_send)


class TestCausalOrder:
    def test_local_order(self):
        events = build_message_run()
        order = CausalOrder(events)
        assert order.happens_before(events[0], events[3])

    def test_message_edge(self):
        events = build_message_run()
        order = CausalOrder(events)
        send, recv = events[3], events[4]
        assert order.happens_before(send, recv)
        assert not order.happens_before(recv, send)

    def test_transitivity_across_processes(self):
        events = build_message_run()
        order = CausalOrder(events)
        a_send, c_recv = events[3], events[6]
        assert order.happens_before(a_send, c_recv)

    def test_concurrent_starts(self):
        events = build_message_run()
        order = CausalOrder(events)
        assert order.concurrent(events[0], events[1])

    def test_event_not_concurrent_with_itself(self):
        events = build_message_run()
        order = CausalOrder(events)
        assert not order.concurrent(events[0], events[0])

    def test_out_of_order_event_stream_still_resolves(self):
        # CausalOrder must not depend on the input ordering of the stream.
        events = list(reversed(build_message_run()))
        order = CausalOrder(events)
        assert order is not None

    def test_unknown_event_raises(self):
        events = build_message_run()
        order = CausalOrder(events)
        foreign = Event(proc=pid("z"), kind=EventKind.START, index=0)
        with pytest.raises(TraceError):
            order.stamp(foreign)


class TestVectorClock:
    def test_leq_componentwise(self):
        v1 = VectorClock.of({A: 1, B: 2})
        v2 = VectorClock.of({A: 1, B: 3})
        assert v1.leq(v2)
        assert not v2.leq(v1)

    def test_missing_components_are_zero(self):
        v1 = VectorClock.of({A: 1})
        v2 = VectorClock.of({A: 1, B: 1})
        assert v1.leq(v2)
        assert v1.get(B) == 0

    def test_merge_takes_maxima(self):
        v1 = VectorClock.of({A: 3, B: 1})
        v2 = VectorClock.of({A: 1, B: 4})
        merged = v1.merge(v2)
        assert merged.get(A) == 3 and merged.get(B) == 4

    @given(
        st.dictionaries(
            st.sampled_from([A, B, C]), st.integers(0, 20), max_size=3
        ),
        st.dictionaries(
            st.sampled_from([A, B, C]), st.integers(0, 20), max_size=3
        ),
    )
    def test_merge_is_upper_bound(self, d1, d2):
        v1, v2 = VectorClock.of(d1), VectorClock.of(d2)
        merged = v1.merge(v2)
        assert v1.leq(merged) and v2.leq(merged)
