"""Unit tests for the discrete-event scheduler and the run trace."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerExhaustedError, TraceError
from repro.ids import pid
from repro.model.events import EventKind
from repro.sim.scheduler import Scheduler
from repro.sim.trace import RunTrace

A, B = pid("a"), pid("b")


class TestScheduler:
    def test_runs_in_time_order(self):
        sched = Scheduler()
        order = []
        sched.at(2.0, lambda: order.append("late"))
        sched.at(1.0, lambda: order.append("early"))
        sched.run()
        assert order == ["early", "late"]

    def test_ties_break_by_insertion(self):
        sched = Scheduler()
        order = []
        sched.at(1.0, lambda: order.append(1))
        sched.at(1.0, lambda: order.append(2))
        sched.run()
        assert order == [1, 2]

    def test_now_advances(self):
        sched = Scheduler()
        seen = []
        sched.at(5.0, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [5.0] and sched.now == 5.0

    def test_after_is_relative(self):
        sched = Scheduler()
        sched.at(3.0, lambda: sched.after(2.0, lambda: None))
        sched.run()
        assert sched.now == 5.0

    def test_cannot_schedule_in_past(self):
        sched = Scheduler()
        sched.at(5.0, lambda: None)
        sched.run()
        with pytest.raises(ValueError):
            sched.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Scheduler().after(-1.0, lambda: None)

    def test_cancel_prevents_execution(self):
        sched = Scheduler()
        ran = []
        timer = sched.at(1.0, lambda: ran.append(1))
        timer.cancel()
        sched.run()
        assert not ran and timer.cancelled

    def test_run_until_time_bound(self):
        sched = Scheduler()
        ran = []
        sched.at(1.0, lambda: ran.append(1))
        sched.at(10.0, lambda: ran.append(2))
        sched.run(until=5.0)
        assert ran == [1] and sched.now == 5.0

    def test_run_until_predicate(self):
        sched = Scheduler()
        state = []
        for t in range(1, 6):
            sched.at(float(t), lambda t=t: state.append(t))
        assert sched.run_until(lambda: len(state) >= 3)
        assert len(state) == 3

    def test_run_until_predicate_never_true(self):
        sched = Scheduler()
        sched.at(1.0, lambda: None)
        assert not sched.run_until(lambda: False)

    def test_runaway_guard(self):
        sched = Scheduler()

        def reschedule():
            sched.after(1.0, reschedule)

        sched.after(1.0, reschedule)
        with pytest.raises(SchedulerExhaustedError):
            sched.run(max_events=100)

    def test_max_events_budget_is_exact(self):
        """Exactly ``max_events`` callbacks run before the guard trips."""
        sched = Scheduler()
        runs: list[float] = []

        def reschedule():
            runs.append(sched.now)
            sched.after(1.0, reschedule)

        sched.after(1.0, reschedule)
        with pytest.raises(SchedulerExhaustedError):
            sched.run(max_events=5)
        assert len(runs) == 5
        assert sched.events_run == 5

    def test_run_until_budget_is_exact(self):
        sched = Scheduler()
        runs: list[float] = []

        def reschedule():
            runs.append(sched.now)
            sched.after(1.0, reschedule)

        sched.after(1.0, reschedule)
        with pytest.raises(SchedulerExhaustedError):
            sched.run_until(lambda: False, max_events=5)
        assert len(runs) == 5

    def test_pending_counts_live_entries(self):
        sched = Scheduler()
        t1 = sched.at(1.0, lambda: None)
        sched.at(2.0, lambda: None)
        t1.cancel()
        assert sched.pending() == 1

    def test_pending_stays_exact_under_cancellation(self):
        """Regression: pending() is a maintained counter; cancels (including
        double cancels and cancels after execution) must keep it exact."""
        sched = Scheduler()
        timers = [sched.at(float(i + 1), lambda: None) for i in range(10)]
        assert sched.pending() == 10
        timers[3].cancel()
        timers[7].cancel()
        timers[3].cancel()  # idempotent: no double decrement
        assert sched.pending() == 8
        sched.step()  # runs t=1.0
        assert sched.pending() == 7
        timers[0].cancel()  # cancel after execution: no effect on the count
        assert sched.pending() == 7
        sched.run()
        assert sched.pending() == 0
        for timer in timers:
            timer.cancel()  # late cancels on a drained queue stay exact
        assert sched.pending() == 0

    def test_pending_exact_interleaved_with_scheduling(self):
        sched = Scheduler()
        live = []
        for i in range(50):
            timer = sched.after(float(i % 5) + 0.5, lambda: None)
            if i % 3 == 0:
                timer.cancel()
            else:
                live.append(timer)
        assert sched.pending() == len(live)
        while sched.step():
            pass
        assert sched.pending() == 0


class TestRunTrace:
    def test_auto_inserts_start(self):
        trace = RunTrace()
        trace.record(A, EventKind.INTERNAL, time=1.0)
        kinds = [e.kind for e in trace.events_of(A)]
        assert kinds == [EventKind.START, EventKind.INTERNAL]

    def test_indices_are_dense_per_process(self):
        trace = RunTrace()
        trace.record(A, EventKind.INTERNAL, time=1.0)
        trace.record(B, EventKind.INTERNAL, time=1.0)
        trace.record(A, EventKind.INTERNAL, time=2.0)
        assert [e.index for e in trace.events_of(A)] == [0, 1, 2]
        assert [e.index for e in trace.events_of(B)] == [0, 1]

    def test_rejects_events_after_crash(self):
        trace = RunTrace()
        trace.record(A, EventKind.CRASH, time=1.0)
        with pytest.raises(TraceError):
            trace.record(A, EventKind.INTERNAL, time=2.0)

    def test_rejects_events_after_quit(self):
        trace = RunTrace()
        trace.record(A, EventKind.QUIT, time=1.0)
        with pytest.raises(TraceError):
            trace.record(A, EventKind.INTERNAL, time=2.0)

    def test_crashed_query(self):
        trace = RunTrace()
        trace.record(A, EventKind.CRASH, time=1.0)
        trace.record(B, EventKind.QUIT, time=1.0)
        assert trace.crashed() == {A}
        assert trace.quit_or_crashed() == {A, B}

    def test_histories_validate(self):
        trace = RunTrace()
        trace.record(A, EventKind.INTERNAL, time=1.0)
        history = trace.history(A)
        assert len(history) == 2

    def test_message_count_by_category(self):
        from repro.model.events import MessageRecord

        trace = RunTrace()
        record = MessageRecord(sender=A, receiver=B, payload="x", category="detector")
        trace.record(A, EventKind.SEND, time=0.0, peer=B, message=record)
        assert trace.message_count("protocol") == 0
        assert trace.message_count("detector") == 1
        assert trace.message_count(None) == 1

    def test_counts_by_type(self):
        from repro.model.events import MessageRecord

        trace = RunTrace()
        for payload in ("x", "y"):
            record = MessageRecord(sender=A, receiver=B, payload=payload)
            trace.record(A, EventKind.SEND, time=0.0, peer=B, message=record)
        assert trace.message_counts_by_type()["str"] == 2

    def test_format_filters_by_kind(self):
        trace = RunTrace()
        trace.record(A, EventKind.FAULTY, time=1.0, peer=B)
        text = trace.format(kinds=[EventKind.FAULTY])
        assert "faulty" in text and "start" not in text
