"""Tests that the GMP property checkers actually detect violations.

A checker that always passes is worthless; these tests feed synthetic
traces containing each class of violation and assert the right property is
flagged — and that clean traces pass.
"""

from __future__ import annotations

from repro.ids import pid
from repro.model.events import EventKind
from repro.properties import check_gmp, format_report
from repro.sim.trace import RunTrace

A, B, C = pid("a"), pid("b"), pid("c")
INITIAL = [A, B, C]


def clean_exclusion_trace() -> RunTrace:
    """A minimal correct run: everyone faults C, removes it, installs v1."""
    trace = RunTrace()
    for proc in (A, B):
        trace.record(proc, EventKind.START, time=0.0)
    for proc in (A, B):
        trace.record(proc, EventKind.FAULTY, time=1.0, peer=C)
        trace.record(proc, EventKind.REMOVE, time=2.0, peer=C)
        trace.record(
            proc, EventKind.INSTALL, time=2.0, version=1, view=(A, B)
        )
    trace.record(C, EventKind.CRASH, time=0.5)
    return trace


class TestCleanRunsPass:
    def test_clean_trace_passes_all(self):
        report = check_gmp(clean_exclusion_trace(), INITIAL)
        assert report.ok, format_report(report)

    def test_empty_run_passes(self):
        trace = RunTrace()
        for proc in INITIAL:
            trace.record(proc, EventKind.START, time=0.0)
        assert check_gmp(trace, INITIAL).ok

    def test_system_views_reported(self):
        report = check_gmp(clean_exclusion_trace(), INITIAL)
        assert [v.version for v in report.system_views] == [0, 1]


class TestGMP1:
    def test_capricious_removal_flagged(self):
        trace = RunTrace()
        trace.record(A, EventKind.START, time=0.0)
        trace.record(A, EventKind.REMOVE, time=1.0, peer=C)
        trace.record(A, EventKind.INSTALL, time=1.0, version=1, view=(A, B))
        report = check_gmp(trace, INITIAL, check_liveness=False)
        assert report.violated("GMP-1")

    def test_capricious_addition_flagged(self):
        trace = RunTrace()
        trace.record(A, EventKind.START, time=0.0)
        trace.record(A, EventKind.ADD, time=1.0, peer=pid("x"))
        trace.record(
            A, EventKind.INSTALL, time=1.0, version=1, view=(A, B, C, pid("x"))
        )
        report = check_gmp(trace, INITIAL, check_liveness=False)
        assert report.violated("GMP-1")


class TestGMP2:
    def test_version_skip_flagged(self):
        trace = RunTrace()
        trace.record(A, EventKind.START, time=0.0)
        trace.record(A, EventKind.FAULTY, time=0.5, peer=C)
        trace.record(A, EventKind.INSTALL, time=1.0, version=2, view=(A, B))
        report = check_gmp(trace, INITIAL, check_liveness=False, check_cuts=False)
        assert report.violated("GMP-2")

    def test_multi_process_transition_flagged(self):
        trace = RunTrace()
        trace.record(A, EventKind.START, time=0.0)
        trace.record(A, EventKind.INSTALL, time=1.0, version=1, view=(A,))
        report = check_gmp(trace, INITIAL, check_liveness=False, check_cuts=False)
        assert report.violated("GMP-2")


class TestGMP3:
    def test_divergent_views_flagged(self):
        trace = RunTrace()
        for proc in (A, B):
            trace.record(proc, EventKind.START, time=0.0)
        trace.record(A, EventKind.INSTALL, time=1.0, version=1, view=(A, B))
        trace.record(B, EventKind.INSTALL, time=1.0, version=1, view=(B, C))
        report = check_gmp(trace, INITIAL, check_liveness=False, check_cuts=False)
        assert report.violated("GMP-3")

    def test_order_divergence_also_flagged(self):
        # Seniority order is part of the view (rank depends on it).
        trace = RunTrace()
        for proc in (A, B):
            trace.record(proc, EventKind.START, time=0.0)
        trace.record(A, EventKind.INSTALL, time=1.0, version=1, view=(A, B))
        trace.record(B, EventKind.INSTALL, time=1.0, version=1, view=(B, A))
        report = check_gmp(trace, INITIAL, check_liveness=False, check_cuts=False)
        assert report.violated("GMP-3")


class TestGMP4:
    def test_reinstatement_flagged(self):
        trace = RunTrace()
        trace.record(A, EventKind.START, time=0.0)
        trace.record(A, EventKind.FAULTY, time=0.5, peer=C)
        trace.record(A, EventKind.INSTALL, time=1.0, version=1, view=(A, B))
        trace.record(A, EventKind.INSTALL, time=2.0, version=2, view=(A, B, C))
        report = check_gmp(trace, INITIAL, check_liveness=False, check_cuts=False)
        assert report.violated("GMP-4")

    def test_new_incarnation_is_not_reinstatement(self):
        c1 = pid("c", 1)
        trace = RunTrace()
        trace.record(A, EventKind.START, time=0.0)
        trace.record(A, EventKind.FAULTY, time=0.5, peer=C)
        trace.record(A, EventKind.REMOVE, time=1.0, peer=C)
        trace.record(A, EventKind.INSTALL, time=1.0, version=1, view=(A, B))
        trace.record(A, EventKind.OPERATING, time=1.5, peer=c1)
        trace.record(A, EventKind.ADD, time=2.0, peer=c1)
        trace.record(A, EventKind.INSTALL, time=2.0, version=2, view=(A, B, c1))
        report = check_gmp(trace, INITIAL, check_liveness=False, check_cuts=False)
        assert not report.violated("GMP-4")


class TestGMP5:
    def test_unserved_suspicion_flagged(self):
        trace = RunTrace()
        for proc in (A, B):
            trace.record(proc, EventKind.START, time=0.0)
        trace.record(A, EventKind.FAULTY, time=1.0, peer=B)
        report = check_gmp(trace, INITIAL, check_liveness=True)
        assert report.violated("GMP-5")

    def test_suspicion_resolved_by_exclusion_passes(self):
        report = check_gmp(clean_exclusion_trace(), INITIAL, check_liveness=True)
        assert not report.violated("GMP-5")

    def test_suspecter_leaving_also_satisfies(self):
        # faulty_A(B) where A itself ends outside the final view is fine.
        trace = RunTrace()
        for proc in (A, B):
            trace.record(proc, EventKind.START, time=0.0)
        trace.record(A, EventKind.FAULTY, time=1.0, peer=B)
        trace.record(A, EventKind.QUIT, time=2.0)
        trace.record(B, EventKind.FAULTY, time=1.5, peer=A)
        trace.record(B, EventKind.REMOVE, time=2.5, peer=A)
        trace.record(B, EventKind.INSTALL, time=2.5, version=1, view=(B, C))
        report = check_gmp(trace, INITIAL, check_liveness=True, check_cuts=False)
        assert not report.violated("GMP-5")


class TestS1:
    def test_receive_after_faulty_flagged(self):
        from repro.model.events import MessageRecord

        trace = RunTrace()
        for proc in (A, B):
            trace.record(proc, EventKind.START, time=0.0)
        record = MessageRecord(sender=B, receiver=A, payload="late")
        trace.record(B, EventKind.SEND, time=0.5, peer=A, message=record)
        trace.record(A, EventKind.FAULTY, time=1.0, peer=B)
        trace.record(A, EventKind.RECV, time=2.0, peer=B, message=record)
        report = check_gmp(trace, INITIAL, check_liveness=False, check_cuts=False)
        assert report.violated("S1")

    def test_discard_after_faulty_is_fine(self):
        from repro.model.events import MessageRecord

        trace = RunTrace()
        for proc in (A, B):
            trace.record(proc, EventKind.START, time=0.0)
        record = MessageRecord(sender=B, receiver=A, payload="late")
        trace.record(B, EventKind.SEND, time=0.5, peer=A, message=record)
        trace.record(A, EventKind.FAULTY, time=1.0, peer=B)
        trace.record(A, EventKind.DISCARD, time=2.0, peer=B, message=record)
        report = check_gmp(trace, INITIAL, check_liveness=False, check_cuts=False)
        assert not report.violated("S1")


class TestReportApi:
    def test_raise_if_violated(self):
        import pytest

        from repro.errors import PropertyViolation

        trace = RunTrace()
        trace.record(A, EventKind.START, time=0.0)
        trace.record(A, EventKind.REMOVE, time=1.0, peer=C)
        trace.record(A, EventKind.INSTALL, time=1.0, version=1, view=(A, B))
        report = check_gmp(trace, INITIAL, check_liveness=False)
        with pytest.raises(PropertyViolation):
            report.raise_if_violated()

    def test_format_mentions_verdict(self):
        report = check_gmp(clean_exclusion_trace(), INITIAL)
        assert "PASS" in format_report(report)
