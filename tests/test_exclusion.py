"""Integration tests: the two-phase and compressed update algorithms."""

from __future__ import annotations

import pytest

from repro.analysis import (
    breakdown,
    compressed_update_messages,
    two_phase_update_messages,
)
from repro.ids import pid
from repro.model.events import EventKind
from repro.sim.network import FixedDelay

from conftest import assert_gmp, make_cluster, names


class TestSingleExclusion:
    def test_crashed_member_is_excluded(self):
        cluster = make_cluster(5, seed=1)
        cluster.crash("p3", at=5.0)
        cluster.settle()
        assert names(cluster.agreed_view()) == ["p0", "p1", "p2", "p4"]
        assert cluster.agreed_version() == 1
        assert_gmp(cluster)

    def test_all_survivors_install_same_sequence(self):
        cluster = make_cluster(6, seed=2)
        cluster.crash("p5", at=5.0)
        cluster.settle()
        histories = {
            p: [
                (e.version, e.view)
                for e in cluster.trace.events_of(p, EventKind.INSTALL)
            ]
            for p, m in cluster.members.items()
            if m.is_member
        }
        assert len({tuple(h) for h in histories.values()}) == 1

    def test_excluded_live_process_quits(self):
        # A live process wrongly suspected by everyone is excluded and, upon
        # learning it, quits (the paper's quit_p on seeing its own removal).
        cluster = make_cluster(5, seed=3, detector="scripted")
        for observer in ("p0", "p1", "p2", "p4"):
            cluster.suspect(observer, "p3", at=5.0)
        cluster.settle()
        victim = cluster.member("p3")
        assert victim.quit
        assert names(cluster.agreed_view()) == ["p0", "p1", "p2", "p4"]
        assert_gmp(cluster)

    @pytest.mark.parametrize("n", [3, 4, 5, 8, 12])
    def test_message_cost_matches_paper_bound(self, n):
        """Best case #1 (§7.2): plain two-phase costs 3n - 5 messages."""
        cluster = make_cluster(n, seed=4, delay_model=FixedDelay(1.0))
        cluster.crash(f"p{n - 1}", at=5.0)
        cluster.settle()
        counts = breakdown(cluster.trace)
        assert counts.algorithm == two_phase_update_messages(n)
        assert_gmp(cluster)

    def test_faulty_precedes_remove_in_every_history(self):
        cluster = make_cluster(5, seed=5)
        cluster.crash("p2", at=5.0)
        cluster.settle()
        for proc in cluster.trace.processes():
            seen_faulty = set()
            for event in cluster.trace.events_of(proc):
                if event.kind is EventKind.FAULTY:
                    seen_faulty.add(event.peer)
                elif event.kind is EventKind.REMOVE:
                    assert event.peer in seen_faulty


class TestCompressedUpdates:
    def test_back_to_back_failures_use_contingent_invitations(self):
        cluster = make_cluster(6, seed=6, delay_model=FixedDelay(1.0))
        # Both crash within the detector delay: the second exclusion should
        # ride the first commit's contingent plan (no second Invite).
        cluster.crash("p4", at=5.0)
        cluster.crash("p5", at=5.2)
        cluster.settle()
        counts = breakdown(cluster.trace)
        # One Invite *broadcast* (n-1 sends) covers both exclusions; the
        # second round's invitation rode the first commit's contingency.
        assert counts.by_type["Invite"] == 5
        assert cluster.agreed_version() == 2
        assert_gmp(cluster)

    def test_compressed_round_message_cost(self):
        """Best case #2 (§7.2): a compressed round costs about 2n - 3."""
        n = 8
        cluster = make_cluster(n, seed=7, delay_model=FixedDelay(1.0))
        cluster.crash("p6", at=5.0)
        cluster.crash("p7", at=5.1)
        cluster.settle()
        counts = breakdown(cluster.trace)
        first_round = two_phase_update_messages(n)
        second_round = counts.algorithm - first_round
        # Our compressed round saves the invite wave: commit (n-2 targets)
        # plus OKs; the paper's bound is 2n - 3.
        assert second_round <= compressed_update_messages(n)
        assert second_round < two_phase_update_messages(n - 1)
        assert_gmp(cluster)

    def test_streak_excludes_all_victims(self):
        # tau(7) = 3: three near-simultaneous failures are the most the
        # majority rule tolerates in a group of seven.
        cluster = make_cluster(7, seed=8)
        for i, victim in enumerate(["p6", "p5", "p4"]):
            cluster.crash(victim, at=5.0 + 0.2 * i)
        cluster.settle()
        assert names(cluster.agreed_view()) == ["p0", "p1", "p2", "p3"]
        assert cluster.agreed_version() == 3
        assert_gmp(cluster)

    def test_spaced_failures_fall_back_to_plain_rounds(self):
        cluster = make_cluster(5, seed=9, delay_model=FixedDelay(1.0))
        cluster.crash("p3", at=5.0)
        cluster.crash("p4", at=200.0)  # far apart: no compression possible
        cluster.settle()
        counts = breakdown(cluster.trace)
        # Two separate Invite broadcasts: 4 sends in the 5-view, then 3.
        assert counts.by_type["Invite"] == 7
        assert_gmp(cluster)


class TestUpdateEdgeCases:
    def test_two_member_group_tolerates_no_failure_under_majority_rule(self):
        # mu(2) = 2: a pair cannot exclude anyone with majority commits —
        # the survivor blocks (quits) rather than act alone.
        cluster = make_cluster(2, seed=10)
        cluster.crash("p1", at=5.0)
        cluster.settle()
        assert cluster.views() == {}
        assert_gmp(cluster, liveness=False)

    def test_two_member_group_excludes_in_basic_mode(self):
        # Section 3.1's basic algorithm (no majority rule) handles it.
        cluster = make_cluster(2, seed=10, majority_updates=False)
        cluster.crash("p1", at=5.0)
        cluster.settle()
        assert names(cluster.agreed_view()) == ["p0"]
        assert_gmp(cluster)

    def test_outer_notice_reaches_coordinator(self):
        # Only an outer process suspects the victim; the coordinator must
        # learn via FaultyNotice and run the exclusion.
        cluster = make_cluster(5, seed=11, detector="scripted")
        cluster.suspect("p2", "p4", at=5.0)
        cluster.settle()
        assert "p4" not in names(cluster.agreed_view())
        assert_gmp(cluster)

    def test_duplicate_notices_cause_single_exclusion(self):
        cluster = make_cluster(5, seed=12, detector="scripted")
        for observer in ("p1", "p2", "p3"):
            cluster.suspect(observer, "p4", at=5.0)
        cluster.settle()
        assert cluster.agreed_version() == 1
        assert_gmp(cluster)

    def test_victim_detected_by_coordinator_only(self):
        cluster = make_cluster(5, seed=13, detector="scripted")
        cluster.suspect("p0", "p3", at=5.0)
        cluster.settle()
        assert "p3" not in names(cluster.agreed_view())
        assert_gmp(cluster)

    def test_basic_mode_tolerates_near_total_failure(self):
        # §3.1: with Mgr immortal and no majority rule, |Memb|-1 failures
        # are tolerated.
        cluster = make_cluster(5, seed=14, majority_updates=False)
        for i, victim in enumerate(["p1", "p2", "p3", "p4"]):
            cluster.crash(victim, at=5.0 + i)
        cluster.settle()
        assert names(cluster.agreed_view()) == ["p0"]
        assert_gmp(cluster)

    def test_majority_mode_coordinator_blocks_on_majority_loss(self):
        # The final algorithm requires majority OKs; crashing a majority
        # between views leaves the coordinator unable to commit (it quits,
        # per Figure 8), but never unsafe.
        cluster = make_cluster(5, seed=15)
        for victim in ("p1", "p2", "p3"):
            cluster.crash(victim, at=5.0)
        cluster.settle()
        assert_gmp(cluster, liveness=False)
        # No view containing fewer than a majority of the old view exists.
        for _, (version, view) in cluster.views().items():
            assert len(view) >= 3 or version == 0
