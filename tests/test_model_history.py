"""Unit tests for process histories and prefix relations (Section 2.1)."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.ids import pid
from repro.model.events import Event, EventKind
from repro.model.history import (
    ProcessHistory,
    history_of,
    is_prefix,
    is_strict_prefix,
)

A = pid("a")
B = pid("b")


def ev(proc, kind, index, **kw):
    return Event(proc=proc, kind=kind, index=index, **kw)


def simple_history(*kinds: EventKind) -> list[Event]:
    events = [ev(A, EventKind.START, 0)]
    for i, kind in enumerate(kinds, start=1):
        events.append(ev(A, kind, i))
    return events


class TestProcessHistoryValidation:
    def test_valid_history_constructs(self):
        history = ProcessHistory(A, simple_history(EventKind.INTERNAL))
        assert len(history) == 2

    def test_empty_history_is_valid(self):
        assert len(ProcessHistory(A, [])) == 0

    def test_must_begin_with_start(self):
        with pytest.raises(TraceError):
            ProcessHistory(A, [ev(A, EventKind.INTERNAL, 0)])

    def test_rejects_foreign_events(self):
        events = [ev(A, EventKind.START, 0), ev(B, EventKind.INTERNAL, 1)]
        with pytest.raises(TraceError):
            ProcessHistory(A, events)

    def test_rejects_non_dense_indices(self):
        events = [ev(A, EventKind.START, 0), ev(A, EventKind.INTERNAL, 5)]
        with pytest.raises(TraceError):
            ProcessHistory(A, events)

    def test_nothing_after_quit(self):
        events = simple_history(EventKind.QUIT, EventKind.INTERNAL)
        with pytest.raises(TraceError):
            ProcessHistory(A, events)

    def test_nothing_after_crash(self):
        events = simple_history(EventKind.CRASH, EventKind.INTERNAL)
        with pytest.raises(TraceError):
            ProcessHistory(A, events)

    def test_terminated_detection(self):
        history = ProcessHistory(A, simple_history(EventKind.QUIT))
        assert history.terminated()

    def test_not_terminated_without_terminal_event(self):
        history = ProcessHistory(A, simple_history(EventKind.INTERNAL))
        assert not history.terminated()


class TestPrefix:
    def test_prefix_of_itself(self):
        events = simple_history(EventKind.INTERNAL)
        assert is_prefix(events, events)

    def test_shorter_prefix(self):
        events = simple_history(EventKind.INTERNAL, EventKind.INTERNAL)
        assert is_prefix(events[:2], events)

    def test_strict_prefix_excludes_equality(self):
        events = simple_history(EventKind.INTERNAL)
        assert not is_strict_prefix(events, events)
        assert is_strict_prefix(events[:1], events)

    def test_longer_is_not_prefix(self):
        events = simple_history(EventKind.INTERNAL)
        assert not is_prefix(events, events[:1])

    def test_divergent_is_not_prefix(self):
        one = simple_history(EventKind.INTERNAL)
        other = simple_history(EventKind.FAULTY)
        assert not is_prefix(one, other)

    def test_prefix_method_returns_validated_history(self):
        history = ProcessHistory(A, simple_history(EventKind.INTERNAL))
        assert len(history.prefix(1)) == 1

    def test_prefix_method_rejects_bad_length(self):
        history = ProcessHistory(A, simple_history())
        with pytest.raises(ValueError):
            history.prefix(5)


class TestHistoryOf:
    def test_filters_and_orders(self):
        events = [
            ev(B, EventKind.START, 0),
            ev(A, EventKind.START, 0),
            ev(A, EventKind.INTERNAL, 1),
        ]
        history = history_of(events, A)
        assert len(history) == 2
        assert all(e.proc == A for e in history)

    def test_events_of_kind(self):
        history = ProcessHistory(
            A, simple_history(EventKind.FAULTY, EventKind.INTERNAL, EventKind.FAULTY)
        )
        assert len(history.events_of_kind(EventKind.FAULTY)) == 2
