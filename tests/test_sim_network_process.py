"""Unit tests for the network substrate and the process base class."""

from __future__ import annotations

import pytest

from repro.errors import ProcessCrashedError, SimulationError
from repro.ids import pid
from repro.model.events import EventKind
from repro.sim.failures import (
    both,
    crash_after_matching_sends,
    crash_at,
    payload_type_is,
    sent_to,
)
from repro.sim.network import FixedDelay, Network, PerPairDelay, UniformDelay
from repro.sim.process import SimProcess
from repro.sim.scheduler import Scheduler
from repro.sim.trace import RunTrace

A, B, C = pid("a"), pid("b"), pid("c")


class Echo(SimProcess):
    """Records payloads; optionally refuses senders (S1 testing)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received: list[tuple] = []
        self.refuse: set = set()

    def should_accept(self, sender, payload):
        return sender not in self.refuse

    def on_message(self, sender, payload):
        self.received.append((sender, payload))


@pytest.fixture
def net():
    scheduler = Scheduler()
    trace = RunTrace()
    network = Network(scheduler, trace, delay_model=FixedDelay(1.0), seed=1)
    procs = {name: Echo(pid(name), network) for name in "abc"}
    for proc in procs.values():
        proc.start()
    return network, procs


class TestDelivery:
    def test_message_delivered(self, net):
        network, procs = net
        procs["a"].send(B, "hello")
        network.scheduler.run()
        assert procs["b"].received == [(A, "hello")]

    def test_fifo_per_channel_with_random_delays(self):
        scheduler = Scheduler()
        network = Network(scheduler, RunTrace(), delay_model=UniformDelay(0.1, 5.0), seed=7)
        a, b = Echo(A, network), Echo(B, network)
        a.start(), b.start()
        for i in range(20):
            a.send(B, i)
        scheduler.run()
        assert [payload for _, payload in b.received] == list(range(20))

    def test_send_to_self_rejected(self, net):
        network, procs = net
        with pytest.raises(SimulationError):
            procs["a"].send(A, "loop")

    def test_crashed_sender_raises(self, net):
        network, procs = net
        procs["a"].crash()
        with pytest.raises(ProcessCrashedError):
            procs["a"].send(B, "x")

    def test_message_to_crashed_receiver_vanishes(self, net):
        network, procs = net
        procs["a"].send(B, "x")
        procs["b"].crash()
        network.scheduler.run()
        assert procs["b"].received == []
        # No RECV event recorded for the crashed process.
        assert not network.trace.events_of(B, EventKind.RECV)

    def test_per_pair_delay_overrides(self):
        scheduler = Scheduler()
        delays = PerPairDelay(default=FixedDelay(1.0), overrides={(A, B): 50.0})
        network = Network(scheduler, RunTrace(), delay_model=delays)
        a, b, c = Echo(A, network), Echo(B, network), Echo(C, network)
        a.start(), b.start(), c.start()
        a.send(B, "slow")
        a.send(C, "fast")
        scheduler.run_until(lambda: bool(c.received))
        assert not b.received
        scheduler.run()
        assert b.received


class TestPartitions:
    def test_partition_holds_messages(self, net):
        network, procs = net
        network.partition({A}, {B})
        procs["a"].send(B, "held")
        network.scheduler.run()
        assert procs["b"].received == []

    def test_heal_delivers_in_order(self, net):
        network, procs = net
        network.partition({A}, {B})
        procs["a"].send(B, 1)
        procs["a"].send(B, 2)
        network.scheduler.run()
        network.heal()
        network.scheduler.run()
        assert [payload for _, payload in procs["b"].received] == [1, 2]

    def test_partition_is_symmetric(self, net):
        network, procs = net
        network.partition({A}, {B})
        assert network.is_partitioned(A, B) and network.is_partitioned(B, A)

    def test_unrelated_channels_unaffected(self, net):
        network, procs = net
        network.partition({A}, {B})
        procs["a"].send(C, "through")
        network.scheduler.run()
        assert procs["c"].received == [(A, "through")]


class TestS1Isolation:
    def test_refused_sender_recorded_as_discard(self, net):
        network, procs = net
        procs["b"].refuse.add(A)
        procs["a"].send(B, "ignored")
        network.scheduler.run()
        assert procs["b"].received == []
        discards = network.trace.events_of(B, EventKind.DISCARD)
        assert len(discards) == 1 and discards[0].peer == A


class TestBroadcast:
    def test_broadcast_skips_self(self, net):
        network, procs = net
        sent = procs["a"].broadcast([A, B, C], "all")
        assert sent == 2
        network.scheduler.run()
        assert procs["b"].received and procs["c"].received

    def test_broadcast_not_failure_atomic(self, net):
        network, procs = net
        crash_after_matching_sends(network, A, lambda record: True, after=1)
        sent = procs["a"].broadcast([B, C], "partial")
        assert sent == 1
        assert procs["a"].crashed
        network.scheduler.run()
        assert procs["b"].received and not procs["c"].received

    def test_broadcast_unknown_sender_rejected(self, net):
        network, _ = net
        with pytest.raises(SimulationError):
            network.broadcast(pid("ghost"), [B], "boo")

    def test_broadcast_respects_partitions(self, net):
        network, procs = net
        network.partition({A}, {C})
        sent = network.broadcast(A, [B, C], "split")
        assert sent == 2  # held counts as sent: the message exists, undelivered
        network.scheduler.run()
        assert procs["b"].received and not procs["c"].received
        network.heal()
        network.scheduler.run()
        assert procs["c"].received

    def test_broadcast_matches_sequential_sends_exactly(self):
        """The batched fan-out must be invisible in the FULL trace: same
        events, same message ids, same delivery schedule as a send loop."""
        import itertools

        from repro.model import events as events_module

        def run_one(use_broadcast: bool) -> str:
            events_module._message_counter = itertools.count(1)
            scheduler = Scheduler()
            trace = RunTrace()
            network = Network(
                scheduler, trace, delay_model=UniformDelay(0.1, 5.0), seed=11
            )
            procs = {name: Echo(pid(name), network) for name in "abcd"}
            for proc in procs.values():
                proc.start()
            targets = [pid(name) for name in "abcd"]
            if use_broadcast:
                network.broadcast(A, targets, "round-1")
                network.broadcast(A, targets, "round-2")
            else:
                for target in targets:
                    if target != A:
                        network.send(A, target, "round-1")
                for target in targets:
                    if target != A:
                        network.send(A, target, "round-2")
            scheduler.run()
            return trace.format()

        assert run_one(True) == run_one(False)


class TestCrashRules:
    def test_crash_at_time(self, net):
        network, procs = net
        crash_at(network, A, 5.0)
        network.scheduler.run()
        assert procs["a"].crashed
        crash_events = network.trace.events_of(A, EventKind.CRASH)
        assert crash_events and crash_events[0].time == 5.0

    def test_predicate_by_payload_type(self, net):
        network, procs = net
        rule = crash_after_matching_sends(network, A, payload_type_is("int"), after=2)
        procs["a"].send(B, "string")  # does not match
        procs["a"].send(B, 1)
        assert not procs["a"].crashed
        procs["a"].send(B, 2)
        assert procs["a"].crashed and rule.fired

    def test_predicate_sent_to(self, net):
        network, procs = net
        crash_after_matching_sends(network, A, sent_to(C), after=1)
        procs["a"].send(B, "x")
        assert not procs["a"].crashed
        procs["a"].send(C, "y")
        assert procs["a"].crashed

    def test_conjunction_predicate(self, net):
        network, procs = net
        crash_after_matching_sends(
            network, A, both(payload_type_is("int"), sent_to(B)), after=1
        )
        procs["a"].send(B, "not int")
        procs["a"].send(C, 7)
        assert not procs["a"].crashed
        procs["a"].send(B, 7)
        assert procs["a"].crashed

    def test_disarm(self, net):
        network, procs = net
        rule = crash_after_matching_sends(network, A, lambda r: True, after=1)
        rule.disarm()
        procs["a"].send(B, "x")
        assert not procs["a"].crashed

    def test_victim_other_process_unaffected(self, net):
        network, procs = net
        crash_after_matching_sends(network, A, lambda r: True, after=1)
        procs["b"].send(C, "fine")
        assert not procs["b"].crashed


class TestLifecycle:
    def test_quit_records_quit_event(self, net):
        network, procs = net
        procs["a"].quit_protocol("done")
        assert network.trace.events_of(A, EventKind.QUIT)
        assert procs["a"].crashed  # quit ceases communication

    def test_crash_cancels_timers(self, net):
        network, procs = net
        fired = []
        procs["a"].set_timer(5.0, lambda: fired.append(1))
        procs["a"].crash()
        network.scheduler.run()
        assert not fired

    def test_timer_fires_when_alive(self, net):
        network, procs = net
        fired = []
        procs["a"].set_timer(5.0, lambda: fired.append(1))
        network.scheduler.run()
        assert fired == [1]

    def test_crash_observers_notified(self, net):
        network, procs = net
        seen = []
        network.add_crash_observer(seen.append)
        procs["a"].crash()
        assert seen == [A]

    def test_duplicate_registration_rejected(self, net):
        network, procs = net
        with pytest.raises(SimulationError):
            Echo(A, network)


class TestLiveProcesses:
    """live_processes() is maintained incrementally on register/crash —
    the oracle detector calls it per suspicion, so it must not rebuild."""

    def test_registration_order_preserved(self, net):
        network, procs = net
        assert network.live_processes() == [procs[n] for n in "abc"]

    def test_crash_removes_immediately(self, net):
        network, procs = net
        procs["b"].crash()
        assert network.live_processes() == [procs["a"], procs["c"]]

    def test_quit_removes_immediately(self, net):
        network, procs = net
        procs["a"].quit_protocol("done")
        assert network.live_processes() == [procs["b"], procs["c"]]

    def test_late_registration_appends(self, net):
        network, procs = net
        d = Echo(pid("d"), network)
        d.start()
        assert network.live_processes()[-1] is d

    def test_double_crash_is_idempotent(self, net):
        network, procs = net
        procs["c"].crash()
        network.notify_crash(procs["c"].pid)
        assert network.live_processes() == [procs["a"], procs["b"]]

    def test_matches_full_rescan(self, net):
        network, procs = net
        procs["a"].crash()
        rescan = [p for p in procs.values() if not p.crashed]
        assert network.live_processes() == rescan
