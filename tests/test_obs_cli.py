"""End-to-end tests for the observability surfacing: ``--metrics-out``,
``repro obs``, and the cache hit/miss reporting on ``repro report``."""

from __future__ import annotations

import json

from repro.cli import main
from repro.runner.cache import ScenarioCache


class TestScenarioMetricsOut:
    def test_figure4_capture_and_summary(self, tmp_path, capsys):
        out = tmp_path / "fig4.jsonl"
        assert main(["scenario", "figure4", "--metrics-out", str(out)]) == 0
        assert out.exists()
        assert out.with_suffix(".prom").exists()
        # figure4 runs a reconfiguration: both phases must appear as spans.
        names = {
            json.loads(line)["name"]
            for line in out.read_text().splitlines()
            if json.loads(line).get("type") == "span"
        }
        assert {"reconfig.phase1", "reconfig.phase2", "reconfig.total"} <= names

        capsys.readouterr()
        assert main(["obs", str(out)]) == 0
        text = capsys.readouterr().out
        assert "reconfiguration duration" in text
        assert "detection latency" in text
        assert "run: command=scenario" in text

    def test_prom_sibling_is_valid_exposition(self, tmp_path):
        out = tmp_path / "fig3.jsonl"
        assert main(["scenario", "figure3", "--metrics-out", str(out)]) == 0
        prom = out.with_suffix(".prom").read_text()
        assert "# TYPE repro_messages_sent_total counter" in prom
        assert "# TYPE repro_trace_events gauge" in prom


class TestObsCommand:
    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_empty_capture_reported(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["obs", str(path)]) == 0
        assert "(capture is empty)" in capsys.readouterr().out


class TestCacheStats:
    def test_cache_counts_hits_misses_stores(self, tmp_path):
        cache = ScenarioCache(root=tmp_path / "c", fingerprint="pinned")
        assert cache.get("s", {"n": 4}) is None
        cache.put("s", {"n": 4}, 17)
        assert cache.get("s", {"n": 4}) == 17
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}
        line = cache.format_stats()
        assert "1 hits" in line and "1 misses" in line and "1 stores" in line

    def test_report_prints_cache_stats(self, tmp_path, capsys):
        assert main(["report", "--cache", str(tmp_path / "c")]) == 0
        first = capsys.readouterr().out
        assert "misses" in first and "stores" in first
        # Second run over the same cache is all hits.
        assert main(["report", "--cache", str(tmp_path / "c")]) == 0
        second = capsys.readouterr().out
        assert "0 misses" in second and "0 stores" in second


class TestBenchObs:
    def test_overhead_gate_flags_violations(self):
        from repro.runner.bench import check_obs_overhead

        assert check_obs_overhead({}) == []
        payload = {
            "obs_overhead": {"n": 50, "overhead_frac": 0.25, "events_match": False}
        }
        failures = check_obs_overhead(payload)
        assert len(failures) == 2
        assert any("perturbed" in f for f in failures)
        assert any("25% slower" in f for f in failures)
        ok = {"obs_overhead": {"n": 50, "overhead_frac": 0.02, "events_match": True}}
        assert check_obs_overhead(ok) == []

    def test_bench_cache_cross_check_flags_stale_entries(self, tmp_path):
        from repro.runner.bench import _cross_check_cache

        cache = ScenarioCache(root=tmp_path / "c", fingerprint="pinned")
        cells = [
            {"name": "single-failure", "params": {"n": 4, "seed": 0}, "messages": 7}
        ]
        assert _cross_check_cache(cells, cache) == []  # miss: stored
        assert cache.get("single-failure", {"n": 4, "seed": 0}) == 7
        cells[0]["messages"] = 9  # simulate a stale cached value
        stale = _cross_check_cache(cells, cache)
        assert len(stale) == 1 and "cached 7" in stale[0]

    def test_bench_metrics_out_writes_churn_capture(self, tmp_path):
        from repro.runner.bench import _write_bench_metrics

        out = _write_bench_metrics(tmp_path / "bench.jsonl", n=6)
        assert out.exists() and out.with_suffix(".prom").exists()
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert records[0]["format"] == "repro-obs/1"
        names = {r.get("name") for r in records if r.get("type") == "span"}
        # The churn workload crashes the coordinator: reconfig spans present.
        assert "reconfig.total" in names
