"""Tests for the epistemic analysis (the paper's Appendix)."""

from __future__ import annotations

from repro.model.knowledge import KnowledgeAnalysis
from repro.workloads.scenarios import run_figure3

from conftest import make_cluster


def analysed(cluster) -> KnowledgeAnalysis:
    return KnowledgeAnalysis(cluster.trace.events)


class TestViewCuts:
    def test_cut_exists_for_every_installed_version(self):
        cluster = make_cluster(5, seed=1)
        cluster.crash("p3", at=5.0)
        cluster.crash("p4", at=60.0)
        cluster.settle()
        analysis = analysed(cluster)
        assert analysis.exact_view_cut(1) is not None
        assert analysis.exact_view_cut(2) is not None
        assert analysis.exact_view_cut(3) is None  # never installed

    def test_view_holds_along_cut(self):
        cluster = make_cluster(5, seed=2)
        cluster.crash("p3", at=5.0)
        cluster.settle()
        analysis = analysed(cluster)
        assert analysis.view_holds_along_cut(1)

    def test_version_along_cut(self):
        cluster = make_cluster(4, seed=3)
        cluster.crash("p3", at=5.0)
        cluster.settle()
        analysis = analysed(cluster)
        cut = analysis.exact_view_cut(1)
        assert cut is not None
        for member in cluster.live_members():
            assert analysis.version_along(member.pid, cut) == 1


class TestHindsight:
    def test_equation4_holds_in_benign_runs(self):
        """Installing version x grounds knowledge that Sys^{x-1} existed."""
        cluster = make_cluster(6, seed=4)
        cluster.crash("p4", at=5.0)
        cluster.crash("p5", at=60.0)
        cluster.settle()
        analysis = analysed(cluster)
        assert analysis.hindsight_holds()

    def test_hindsight_survives_reconfiguration(self):
        cluster = make_cluster(6, seed=5)
        cluster.crash("p0", at=5.0)
        cluster.settle()
        analysis = analysed(cluster)
        assert analysis.hindsight_holds()

    def test_hindsight_points_enumerate_installs(self):
        cluster = make_cluster(4, seed=6)
        cluster.crash("p3", at=5.0)
        cluster.settle()
        points = analysed(cluster).hindsight_points()
        # Three survivors each install version 1 -> three hindsight points
        # about version 0.
        assert len([p for p in points if p.version == 0]) == 3


class TestConcurrentCommonKnowledge:
    def test_attained_when_coordinator_survives(self):
        """Appendix: with Mgr alive, view composition is concurrent common
        knowledge along the install cut."""
        cluster = make_cluster(5, seed=7)
        cluster.crash("p4", at=5.0)
        cluster.settle()
        analysis = analysed(cluster)
        assert 1 in analysis.common_knowledge_versions()

    def test_interrupted_commit_weakens_knowledge(self):
        """When Mgr dies mid-commit, the partially installed version is not
        locally distinguishable — receivers cannot tell whether the rest of
        the group will ever see it (it takes the reconfiguration's later
        re-commit to stabilise it)."""
        cluster = run_figure3(n=5, commit_sends_before_crash=1)
        analysis = analysed(cluster)
        # Version 1's install events straddle the original commit and the
        # reconfigurer's re-commit: the canonical cut contains communication
        # past the early installer's install event.
        assert not analysis.is_locally_distinguishable(1)

    def test_post_reconfiguration_versions_recover_knowledge(self):
        cluster = run_figure3(n=5, commit_sends_before_crash=1)
        analysis = analysed(cluster)
        versions = analysis.common_knowledge_versions()
        # The final (stable) version regains concurrent common knowledge.
        final = max(
            v for seq in analysis._sequences.values() for v in [s.version for s in seq]
        )
        assert final in versions
