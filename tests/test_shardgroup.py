"""Tests for the sharded membership layer and the reconciliation bugfixes.

Three regression classes guard the client-view reconciliation fixes in
:mod:`repro.extensions.hierarchy` (a deposed coordinator must re-reconcile
on re-election; only solicited reconciliation replies count; gapped updates
must not amplify into a sync storm), and the rest exercise
:mod:`repro.shardgroup`: registry/delta-log mechanics, churn through the
full core+cells control simulation, the leaf-churn-never-reconfigures-the-
core invariant, and byte-identical same-seed traces through crash,
coordinator re-election, and partition-heal.
"""

from __future__ import annotations

import pytest

from repro.extensions import ClientDirectory
from repro.extensions.hierarchy import (
    ClientState,
    ClientSyncRequest,
    ClientUpdate,
    ClientOp,
)
from repro.ids import pid
from repro.shardgroup import (
    CellDelta,
    CellOp,
    CellRegistry,
    DeltaLog,
    LeafFailureReport,
    ShardGroupCluster,
    ViewDigest,
)
from repro.shardgroup.directory import DELTA_LOG_CAP, apply_delta

from conftest import make_cluster


def cluster_with_directories(n: int = 4, **kwargs):
    cluster = make_cluster(n, **kwargs)
    directories = {
        p: ClientDirectory(member) for p, member in cluster.members.items()
    }
    return cluster, directories


def coordinator_directory(cluster, directories):
    mgr = cluster.live_members()[0].state.mgr
    return directories[mgr]


class TestReelectedCoordinatorReconciles:
    """Bugfix 1: the reconciliation marker must clear when coordinatorship
    moves away, so a deposed-then-re-elected coordinator reconciles again
    instead of rebroadcasting a stale registry."""

    def _reconciled_coordinator(self):
        cluster, dirs = cluster_with_directories(5)
        cluster.run(until=5.0)
        # The run-initial coordinator only reconciles once a view install
        # fires; excluding a junior member provides one.
        cluster.crash("p4")
        cluster.settle()
        return cluster, coordinator_directory(cluster, dirs)

    def test_marker_clears_when_coordinatorship_moves_away(self):
        cluster, directory = self._reconciled_coordinator()
        assert directory._reconciled_as_mgr is not None
        directory.on_coordinator_changed(7, pid("someone-else"))
        assert directory._reconciled_as_mgr is None

    def test_reelected_coordinator_reconciles_again(self):
        cluster, directory = self._reconciled_coordinator()
        directory.on_coordinator_changed(7, pid("someone-else"))
        # Re-election: reconciliation must restart (solicit the others),
        # not silently resume writership with a possibly stale registry.
        directory.on_coordinator_changed(8, directory.member.pid)
        assert directory._reconciled_as_mgr == 8
        assert directory._sync_pending  # re-solicited the survivors

    def test_deposition_abandons_inflight_reconciliation(self):
        cluster, directory = self._reconciled_coordinator()
        directory._sync_pending = {pid("p9")}
        epoch = directory._sync_epoch
        directory.on_coordinator_changed(7, pid("someone-else"))
        assert directory._sync_pending == set()
        # The epoch bump turns the armed deadline timer into a no-op.
        assert directory._sync_epoch == epoch + 1


class TestSolicitedRepliesOnly:
    """Bugfix 2: while a reconciliation is pending, a ClientState from a
    process we did not solicit must not be folded into the sync."""

    def test_unsolicited_state_does_not_advance_reconciliation(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        directory = coordinator_directory(cluster, dirs)
        directory._sync_pending = {pid("p1"), pid("p2")}
        directory._sync_best = None
        forged = ClientState(clients=(pid("forged"),), version=99)
        directory._on_state(pid("intruder"), forged)
        assert directory._sync_pending == {pid("p1"), pid("p2")}
        assert directory._sync_best is None
        assert pid("forged") not in directory.view

    def test_solicited_reply_still_counts(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        directory = coordinator_directory(cluster, dirs)
        directory._sync_pending = {pid("p1")}
        directory._sync_best = None
        directory._on_state(
            pid("p1"), ClientState(clients=(pid("client-a"),), version=5)
        )
        assert directory._sync_pending == set()
        assert pid("client-a") in directory.view
        assert directory.view.version == 5


class TestGapSyncDeduplication:
    """Bugfix 3: a burst of gapped updates triggers ONE catch-up sync."""

    def _gapped_directory(self):
        cluster, dirs = cluster_with_directories()
        cluster.run(until=5.0)
        mgr = cluster.live_members()[0].state.mgr
        follower = next(d for p, d in dirs.items() if p != mgr)
        sent: list[object] = []
        original = follower.member.send

        def recording_send(to, payload, category="protocol"):
            sent.append(payload)
            return original(to, payload, category=category)

        follower.member.send = recording_send
        return cluster, follower, mgr, sent

    def test_gap_burst_sends_single_sync_request(self):
        cluster, follower, mgr, sent = self._gapped_directory()
        for version in (5, 6, 7):
            follower._on_update(
                mgr, ClientUpdate(ClientOp("admit", pid(f"c{version}")), version)
            )
        syncs = [m for m in sent if isinstance(m, ClientSyncRequest)]
        assert len(syncs) == 1
        assert follower._catch_up_inflight

    def test_catch_up_state_clears_inflight_flag(self):
        cluster, follower, mgr, sent = self._gapped_directory()
        follower._on_update(
            mgr, ClientUpdate(ClientOp("admit", pid("c5")), version=5)
        )
        assert follower._catch_up_inflight
        follower._on_state(
            mgr, ClientState(clients=(pid("c1"), pid("c5")), version=5)
        )
        assert not follower._catch_up_inflight
        assert follower.view.version == 5
        # A later gap may sync again — the flag must not latch forever.
        follower._on_update(
            mgr, ClientUpdate(ClientOp("admit", pid("c9")), version=9)
        )
        assert len([m for m in sent if isinstance(m, ClientSyncRequest)]) == 2


class TestCellRegistry:
    def test_apply_and_duplicates(self):
        registry = CellRegistry("s0")
        assert registry.apply(CellOp("admit", pid("a")))
        assert not registry.apply(CellOp("admit", pid("a")))
        assert registry.apply(CellOp("expel", pid("a")))
        assert not registry.apply(CellOp("expel", pid("a")))
        assert registry.version == 2
        assert registry.members() == ()

    def test_delta_since_serves_contiguous_suffix(self):
        registry = CellRegistry("s0")
        for i in range(5):
            registry.apply(CellOp("admit", pid(f"l{i}")))
        delta = registry.delta_since(2)
        assert delta.since == 2
        assert delta.snapshot is None
        assert [op.leaf for op in delta.ops] == [pid("l2"), pid("l3"), pid("l4")]
        follower = CellRegistry("s0")
        for i in range(2):
            follower.apply(CellOp("admit", pid(f"l{i}")))
        assert apply_delta(follower, delta)
        assert follower.members() == registry.members()
        assert follower.version == registry.version

    def test_truncated_log_falls_back_to_snapshot(self):
        registry = CellRegistry("s0")
        for i in range(DELTA_LOG_CAP + 10):
            registry.apply(CellOp("admit", pid(f"l{i}")))
        delta = registry.delta_since(1)  # older than the retained suffix
        assert delta.snapshot is not None
        follower = CellRegistry("s0")
        follower.apply(CellOp("admit", pid("l0")))
        assert apply_delta(follower, delta)
        assert follower.version == registry.version
        assert follower.members() == registry.members()

    def test_stale_delta_ignored(self):
        registry = CellRegistry("s0")
        registry.apply(CellOp("admit", pid("a")))
        registry.apply(CellOp("admit", pid("b")))
        stale = registry.delta_since(0)
        assert not apply_delta(registry, stale)
        assert registry.version == 2

    def test_delta_log_cap(self):
        log = DeltaLog()
        for i in range(DELTA_LOG_CAP * 2):
            log.append(CellOp("admit", pid(f"l{i}")))
        assert log.since(0) is None  # truncated
        suffix = log.since(DELTA_LOG_CAP)
        assert suffix is not None
        assert len(suffix) == DELTA_LOG_CAP


def churn_cluster(seed: int = 3, n_core: int = 5):
    """Core + two cells driven through leaf churn, coordinator crash,
    and a core partition-heal — the full gauntlet."""
    cluster = ShardGroupCluster(
        n_core=n_core,
        n_cells=2,
        cell_size=6,
        seed=seed,
        leaf_detector_kwargs={"probe_timeout": 3.0, "suspicion_timeout": 4.0},
    )
    cluster.start()
    cluster.run(until=20.0)
    cluster.crash_leaf("s0-l5")
    cluster.schedule_admit("s0", "s0x0", at=40.0)
    cluster.run(until=60.0)
    cluster.crash_core("c0")  # coordinator fails over mid-stream
    cluster.run(until=90.0)
    cluster.partition_core(["c1"], ["c2", "c3", "c4"])
    cluster.run(until=120.0)
    cluster.heal()
    cluster.run(until=160.0)
    return cluster


class TestShardGroupChurn:
    @pytest.fixture(scope="class")
    def churned(self):
        return churn_cluster()

    def test_leaf_churn_applied_across_failover(self, churned):
        roster = churned.authoritative_roster("s0")
        assert pid("s0-l5") not in roster
        assert pid("s0x0") in roster
        assert len(churned.authoritative_roster("s1")) == 6

    def test_all_writes_converged(self, churned):
        report = churned.convergence_report()
        assert report, "churn must have produced roster writes"
        assert all(row["converged"] for row in report), report

    def test_new_coordinator_is_writable(self, churned):
        directory = churned.coordinator_directory()
        assert directory.member.pid != pid("c0")
        assert directory.writable

    def test_leaf_churn_never_reconfigured_the_core(self):
        # Leaf-only churn: crash, detector-driven expulsion, admission.
        # The core group must not run a single reconfiguration for it.
        cluster = ShardGroupCluster(
            n_core=3,
            n_cells=2,
            cell_size=6,
            seed=11,
            leaf_detector_kwargs={"probe_timeout": 3.0, "suspicion_timeout": 4.0},
        )
        cluster.start()
        cluster.run(until=10.0)
        cluster.crash_leaf("s1-l5")
        cluster.schedule_admit("s0", "s0x0", at=15.0)
        cluster.run(until=60.0)
        assert cluster.core_reconfigurations() == 0
        assert pid("s1-l5") not in cluster.authoritative_roster("s1")
        assert pid("s0x0") in cluster.authoritative_roster("s0")

    def test_delegate_crash_promotes_reporter(self):
        # Crash the *delegate* (most senior leaf): the next-senior leaf
        # inherits delegate duty, re-reports the failure it had already
        # convicted, and the cell keeps converging.
        cluster = ShardGroupCluster(
            n_core=3,
            n_cells=1,
            cell_size=6,
            seed=5,
            leaf_detector_kwargs={"probe_timeout": 3.0, "suspicion_timeout": 4.0},
        )
        cluster.start()
        cluster.run(until=10.0)
        cluster.crash_leaf("s0-l0")
        cluster.run(until=60.0)
        roster = cluster.authoritative_roster("s0")
        assert pid("s0-l0") not in roster
        assert cluster.core_reconfigurations() == 0
        survivor = cluster.leaves[pid("s0-l1")]
        assert survivor.delegate() == survivor.pid


class TestReconciliationWindow:
    """Regression: the directory must not be writable mid-reconciliation,
    deferred writes must replay on completion, and a lost reconciliation
    pull must not wedge the coordinator non-writable forever."""

    def _mid_reconciliation(self):
        cluster = ShardGroupCluster(n_core=4, n_cells=1, cell_size=6, seed=7)
        cluster.start()
        cluster.run(until=5.0)
        directory = cluster.directories[pid("c0")]
        assert directory.writable  # run-initial coordinator
        directory._step_down()
        directory.on_coordinator_changed(
            directory.member.state.version, pid("c0")
        )
        return cluster, directory

    def test_not_writable_until_reconciliation_completes(self):
        cluster, directory = self._mid_reconciliation()
        assert directory._sync_pending
        assert not directory.writable
        assert directory._reconciled_as_mgr is None

    def test_mid_reconciliation_report_and_admit_are_deferred(self):
        cluster, directory = self._mid_reconciliation()
        directory._on_failure_report(
            pid("c1"), LeafFailureReport("s0", pid("s0-l3"))
        )
        directory.request_admit("s0", pid("s0x9"))
        assert directory._deferred_reports and directory._deferred_admits
        registry = directory.registry("s0")
        assert pid("s0-l3") in registry and pid("s0x9") not in registry
        for survivor in list(directory._sync_pending):
            directory._on_digest(survivor, ViewDigest(()))
        # Reconciliation done: writable again, deferred writes replayed.
        assert directory.writable
        assert pid("s0-l3") not in registry
        assert pid("s0x9") in registry
        assert not directory._deferred_reports
        assert not directory._deferred_admits

    def test_lost_reconciliation_pull_cannot_wedge_the_coordinator(self):
        # The coordinator stays in the majority (a minority member removes
        # itself).  c1's digest claims a cell the coordinator must pull,
        # but the pull is held by the partition and never answered; c2
        # never answers the digest solicitation at all, so the deadline
        # fires with _sync_pending non-empty and must re-arm itself for
        # the reconciliation pulls it then issues.
        cluster = ShardGroupCluster(n_core=5, n_cells=1, cell_size=6, seed=7)
        cluster.start()
        cluster.run(until=5.0)
        cluster.partition_core(["c0", "c3", "c4"], ["c1", "c2"])
        directory = cluster.directories[pid("c0")]
        directory._step_down()
        directory.on_coordinator_changed(
            directory.member.state.version, pid("c0")
        )
        directory._on_digest(pid("c1"), ViewDigest((("s0", 999),)))
        deadline = 5.0 + directory.sync_timeout
        cluster.run(until=deadline + 1.0)
        assert directory._sync_pulls == {"s0"}  # pull issued at the deadline
        assert not directory.writable
        cluster.run(until=deadline + directory.sync_timeout + 2.0)
        assert directory.writable


class TestDelegateRebroadcastIntegrity:
    """Regression: the delegate serves its cell broadcast from its own
    delta log; relabeling the core reply's ops as starting at the local
    pre-apply version corrupts followers whose registry is in between."""

    def test_broadcast_served_from_own_log_not_relabeled(self):
        cluster = ShardGroupCluster(n_core=3, n_cells=1, cell_size=4, seed=2)
        delegate = cluster.leaves[pid("s0-l0")]
        assert delegate.registry.version == 4
        ops = [CellOp("admit", pid(f"x{i}")) for i in (5, 6, 7)]
        # An old delegate's broadcast lands between our pull and the core
        # reply: the registry advances past the reply's `since`.
        delegate.registry.apply(ops[0])
        captured: list[CellDelta] = []
        delegate.broadcast = (
            lambda targets, payload, category="protocol": captured.append(payload)
        )
        delegate._on_delta(
            cluster.core_pids[0], CellDelta("s0", 4, tuple(ops), 7)
        )
        assert delegate.registry.version == 7
        (rebroadcast,) = captured
        assert rebroadcast.since == 5
        assert [op.leaf for op in rebroadcast.ops] == [pid("x6"), pid("x7")]
        # A follower sitting at version 5 applies it cleanly and converges.
        follower = CellRegistry("s0")
        for i in range(4):
            follower.apply(CellOp("admit", pid(f"s0-l{i}")))
        follower.apply(ops[0])
        assert apply_delta(follower, rebroadcast)
        assert follower.members() == delegate.registry.members()


class TestShardDeterminism:
    def test_same_seed_traces_are_byte_identical(self):
        # Crash, coordinator re-election, and partition-heal included —
        # the canonical digest covers every protocol-visible event.
        assert churn_cluster().trace_digest() == churn_cluster().trace_digest()

    def test_different_seeds_diverge(self):
        assert churn_cluster(seed=3).trace_digest() != churn_cluster(
            seed=4
        ).trace_digest()


class TestSatelliteCell:
    def test_satellite_matches_control_semantics(self):
        from repro.shardgroup.bench import satellite_cell

        result = satellite_cell(
            {"cell_index": 2, "seed": 1, "cell_size": 12, "duration": 40.0}
        )
        assert result["expelled"] and result["admitted"]
        assert result["convergence"]["unconverged"] == 0
        assert result["convergence"]["writes"] == 2

    def test_satellite_cells_are_deterministic(self):
        from repro.shardgroup.bench import satellite_cell

        job = {"cell_index": 4, "seed": 9, "cell_size": 12, "duration": 40.0}
        assert satellite_cell(job) == satellite_cell(job)


class TestConvergenceCensoring:
    """Writes the horizon cuts off are censored data, not failures."""

    class _FakeLeaf:
        def __init__(self, applied_at, created_at=0.0, crashed=False):
            self.applied_at = applied_at
            self.created_at = created_at
            self.crashed = crashed

    def _rows(self, issued_at, horizon):
        from repro.shardgroup.bench import _convergence_rows

        leaves = {
            pid("s0-l0"): self._FakeLeaf({1: 12.0}),
            pid("s0-l1"): self._FakeLeaf({}),  # never applies anything
        }
        roster = frozenset(leaves)
        return _convergence_rows(
            {("s0", 1): issued_at}, leaves, roster, horizon=horizon
        )

    def test_late_write_is_censored_not_unconverged(self):
        from repro.shardgroup.bench import CONVERGENCE_GRACE, _summarise_convergence

        rows = self._rows(issued_at=40.0 - CONVERGENCE_GRACE / 2, horizon=40.0)
        assert rows[0]["censored"] and not rows[0]["converged"]
        summary = _summarise_convergence(rows)
        assert summary["unconverged"] == 0
        assert summary["censored"] == 1

    def test_early_stalled_write_still_fails(self):
        from repro.shardgroup.bench import _summarise_convergence

        rows = self._rows(issued_at=5.0, horizon=40.0)
        assert not rows[0]["censored"] and not rows[0]["converged"]
        summary = _summarise_convergence(rows)
        assert summary["unconverged"] == 1
        assert summary["censored"] == 0

    def test_converged_write_is_never_censored(self):
        from repro.shardgroup.bench import _convergence_rows

        leaves = {pid("s0-l0"): self._FakeLeaf({1: 39.5})}
        rows = _convergence_rows(
            {("s0", 1): 39.0}, leaves, frozenset(leaves), horizon=40.0
        )
        assert rows[0]["converged"] and not rows[0]["censored"]

    def test_tail_cell_regression(self):
        # Cell 753 under root seed 1 convicts its crashed leaf ~30s
        # post-crash, pushing the expel write within one dissemination
        # cycle of the 40s horizon: censored, not a convergence failure.
        from repro.shardgroup.bench import satellite_cell

        result = satellite_cell({"cell_index": 753, "seed": 1})
        assert result["expelled"] and result["admitted"]
        assert result["convergence"]["unconverged"] == 0
        assert result["convergence"]["censored"] == 1
