"""Seeded ASY402: fire-and-forget task, result and exceptions dropped."""

import asyncio


async def on_crash(network, who):
    asyncio.get_running_loop().create_task(network.close_server(who))
