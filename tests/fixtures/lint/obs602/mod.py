"""Seeded OBS602: span begun but never ended anywhere."""


class Session:
    def open_window(self, obs, key):
        obs.spans.begin("session.window", key, at=0.0)
