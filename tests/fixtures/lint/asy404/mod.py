"""Seeded ASY404: blocking call inside a coroutine."""

import time


async def heartbeat_loop(period):
    while True:
        time.sleep(period)  # lint: allow[DET101]
