"""Seeded WIRE501: encoder omits a schema field."""

from core.messages import Commit

WIRE_VERSION = 1

_ENCODERS = {  # lint: allow[schema]
    Commit: lambda m: {"op": m.op, "version": m.version},  # faulty never travels
}
