"""Seeded WIRE502: decoder disagrees with its encoder."""

from core.messages import Commit

WIRE_VERSION = 1

_ENCODERS = {
    Commit: lambda m: {"op": m.op, "version": m.version, "faulty": m.faulty},
}

_DECODERS = {
    "Commit": lambda d: Commit(
        op=d["op"], version=_version_in(d["version"]), faulty=d["fault"]
    ),
}


def _version_in(value):
    return int(value)
