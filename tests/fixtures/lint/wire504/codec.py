"""Seeded WIRE504: paired code tables are not inverses."""

_CAT_CODES = {"join": 1, "leave": 2}
_CAT_NAMES = {1: "join", 2: "quit"}
