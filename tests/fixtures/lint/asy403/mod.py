"""Seeded ASY403: asyncio primitives constructed at import time."""

import asyncio

READY = asyncio.Event()


class Shared:
    lock = asyncio.Lock()


def poll(queue=asyncio.Queue()):
    return queue
