"""Seeded OBS601: span can leak past an early return."""


class Tracker:
    def __init__(self, network):
        self.network = network

    def probe(self, key):
        obs = self.network.obs
        if obs is None:
            return
        obs.spans.begin("probe.rtt", key, at=0.0)
        if key is None:
            return  # leaks probe.rtt
        obs.spans.end("probe.rtt", key, at=1.0)
