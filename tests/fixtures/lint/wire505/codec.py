"""Seeded WIRE505: version bound never validated."""

import json

from core.messages import Commit

WIRE_VERSION = 1

_ENCODERS = {
    Commit: lambda m: {"op": m.op, "version": m.version, "faulty": m.faulty},
}

_DECODERS = {
    "Commit": lambda d: Commit(
        op=d["op"], version=d["version"], faulty=d["faulty"]
    ),
}


def decode(raw):
    frame = json.loads(raw)
    # Never compares frame["v"] against WIRE_VERSION.
    return _DECODERS[frame["t"]](frame["body"])
