"""Seeded ASY401: read-check-await-write on shared instance state."""

import asyncio


class PortRegistry:
    def __init__(self):
        self._ports = {}

    async def serve(self, pid):
        if pid in self._ports:
            return self._ports[pid]
        port = await self._allocate(pid)
        self._ports[pid] = port  # stale: a concurrent serve() may have won
        return port

    async def _allocate(self, pid):
        await asyncio.sleep(0)
        return 1024 + len(self._ports)
