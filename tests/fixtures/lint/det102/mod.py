"""Seeded DET102: probe-target selection off the process-global RNG.

A SWIM-style detector that shuffles its probe permutation with the module
RNG replays differently on every interpreter run; the fix is the one the
real :class:`repro.detectors.swim.SwimDetector` uses — thread one seeded
``random.Random`` through and draw every shuffle/choice from it.
"""

import random


class ProbeScheduler:
    def __init__(self, members):
        self.members = list(members)
        self._order = []

    def next_target(self):
        if not self._order:
            self._order = list(self.members)
            random.shuffle(self._order)  # global RNG: unseeded, irreplayable
        return self._order.pop()
