"""Seeded OBS603: obs dereferenced outside the is-not-None guard."""


class Layer:
    def __init__(self):
        self.obs = None

    def record(self, n):
        self.obs.count_send(n, "update")
