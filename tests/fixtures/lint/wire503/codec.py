"""Seeded WIRE503: compact tables out of step with the JSON tables."""

from core.messages import Abort, Commit

WIRE_VERSION = 1
COMPACT_WIRE_VERSION = 2

_ENCODERS = {  # lint: allow[schema]
    Commit: lambda m: {"op": m.op, "version": m.version, "faulty": m.faulty},
    Abort: lambda m: {"version": m.version},
}

_COMPACT_ENCODERS = {
    Commit: (1, lambda m: b""),  # Abort missing: formats diverge
}

_COMPACT_DECODERS = {
    2: lambda payload: None,  # inverts nothing; id 1 has no decoder
}
