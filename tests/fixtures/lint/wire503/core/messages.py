"""Message schemas for the wire-conformance fixtures."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Commit:  # lint: allow[schema]
    op: object
    version: int
    faulty: tuple


@dataclass(frozen=True)
class Abort:  # lint: allow[schema]
    version: int
