"""Tests for the sharded simulator (repro.runner.shard).

The contract under test: sharding is *invisible*.  Same root seed ⇒ the
merged canonical trace digest is byte-identical whatever the shard count
or epoch length, including when scripted crashes land exactly on an epoch
boundary.  The epoch barrier's Lamport-style validation (stale stamps,
unknown groups, self-routing) is exercised directly.
"""

from __future__ import annotations

import pytest

from repro.runner.shard import (
    EpochBarrier,
    EpochEnvelope,
    ShardExchangeError,
    derive_group_seed,
    shard_churn_run,
)

# Small but structurally complete: each group still runs a join, a junior
# crash and a coordinator crash (the three distinct view changes).
GROUPS = 4
SIZE = 6


def digest(shards: int, seed: int = 0, **kwargs) -> str:
    run = shard_churn_run(
        groups=GROUPS, group_size=SIZE, shards=shards, seed=seed, **kwargs
    )
    assert run.agreed
    assert run.events > 0
    return run.merged_digest


class TestShardDeterminism:
    def test_merged_trace_identical_for_1_2_4_shards(self):
        digests = {digest(shards) for shards in (1, 2, 4)}
        assert len(digests) == 1

    def test_seed_variation_still_merges_identically_across_shards(self):
        # FixedDelay makes the churn groups seed-insensitive; what matters
        # is that any given seed stays placement-invariant.
        assert digest(1, seed=1) == digest(4, seed=1)

    def test_same_seed_same_shards_is_reproducible(self):
        assert digest(2, seed=7) == digest(2, seed=7)

    def test_crash_exactly_on_epoch_boundary(self):
        # The workload crashes processes at t=40 and t=60.  With
        # epoch_length=20 both land exactly on epoch boundaries; the
        # boundary event must run in the same epoch for every shard count.
        boundary = {
            digest(shards, epoch_length=20.0) for shards in (1, 2, 4)
        }
        assert len(boundary) == 1

    def test_epoch_partitioning_does_not_change_the_run(self):
        # Cutting simulated time differently (crashes mid-epoch vs on a
        # boundary) must not alter the merged trace at all.
        assert digest(2, epoch_length=7.0) == digest(2, epoch_length=10.0)

    def test_worker_count_does_not_change_the_run(self):
        assert digest(2, workers=1) == digest(2, workers=2)


class TestShardPlanValidation:
    def test_more_shards_than_groups_rejected(self):
        with pytest.raises(ValueError):
            shard_churn_run(groups=2, group_size=4, shards=3)

    def test_nonpositive_counts_rejected(self):
        with pytest.raises(ValueError):
            shard_churn_run(groups=0, group_size=4, shards=1)


class TestGroupSeeds:
    def test_deterministic(self):
        assert derive_group_seed(42, 3) == derive_group_seed(42, 3)

    def test_distinct_per_group_and_root(self):
        seeds = {derive_group_seed(0, g) for g in range(32)}
        assert len(seeds) == 32
        assert derive_group_seed(0, 1) != derive_group_seed(1, 1)


class TestEpochBarrier:
    def test_advances_epoch_and_routes_nothing_for_empty_envelopes(self):
        barrier = EpochBarrier([0, 1])
        delivery = barrier.exchange(
            [EpochEnvelope(epoch=0, source_group=0), EpochEnvelope(epoch=0, source_group=1)]
        )
        assert delivery == {0: [], 1: []}
        assert barrier.epoch == 1
        assert barrier.exchanges == 1

    def test_routes_messages_to_next_epoch(self):
        # Closing epoch 0 returns the messages due at the start of epoch 1.
        barrier = EpochBarrier([0, 1])
        delivery = barrier.exchange(
            [EpochEnvelope(epoch=0, source_group=0, messages=((1, "hello"),))]
        )
        assert delivery[1] == ["hello"]
        assert delivery[0] == []
        delivery = barrier.exchange([EpochEnvelope(epoch=1, source_group=1)])
        assert delivery == {0: [], 1: []}

    def test_stale_epoch_stamp_rejected(self):
        barrier = EpochBarrier([0])
        barrier.exchange([EpochEnvelope(epoch=0, source_group=0)])
        with pytest.raises(ShardExchangeError, match="stamped epoch 0"):
            barrier.exchange([EpochEnvelope(epoch=0, source_group=0)])

    def test_unknown_source_group_rejected(self):
        barrier = EpochBarrier([0])
        with pytest.raises(ShardExchangeError, match="unknown group 5"):
            barrier.exchange([EpochEnvelope(epoch=0, source_group=5)])

    def test_unknown_destination_rejected(self):
        barrier = EpochBarrier([0])
        with pytest.raises(ShardExchangeError, match="unknown\n?.*group 9"):
            barrier.exchange(
                [EpochEnvelope(epoch=0, source_group=0, messages=((9, "x"),))]
            )

    def test_self_routing_rejected(self):
        barrier = EpochBarrier([0, 1])
        with pytest.raises(ShardExchangeError, match="itself"):
            barrier.exchange(
                [EpochEnvelope(epoch=0, source_group=0, messages=((0, "x"),))]
            )
