"""Unit tests for the asyncio in-memory network fabric."""

from __future__ import annotations

import asyncio

import pytest

from repro.aio.network import AioNetwork
from repro.aio.scheduler import AioScheduler, AioTimer
from repro.errors import ProcessCrashedError, SimulationError
from repro.ids import pid
from repro.model.events import EventKind
from repro.sim.network import FixedDelay
from repro.sim.process import SimProcess

A, B = pid("a"), pid("b")


class Echo(SimProcess):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def on_message(self, sender, payload):
        self.received.append((sender, payload))


def run(coro):
    return asyncio.run(coro)


class TestAioScheduler:
    def test_now_advances_with_loop_time(self):
        async def scenario():
            scheduler = AioScheduler()
            t0 = scheduler.now
            await asyncio.sleep(0.02)
            return scheduler.now - t0

        assert run(scenario()) >= 0.015

    def test_after_fires_callback(self):
        async def scenario():
            scheduler = AioScheduler()
            fired = []
            scheduler.after(0.01, lambda: fired.append(1))
            await asyncio.sleep(0.05)
            return fired

        assert run(scenario()) == [1]

    def test_cancel_prevents_firing(self):
        async def scenario():
            scheduler = AioScheduler()
            fired = []
            timer = scheduler.after(0.01, lambda: fired.append(1))
            timer.cancel()
            assert timer.cancelled
            await asyncio.sleep(0.05)
            return fired

        assert run(scenario()) == []

    def test_negative_delay_rejected(self):
        async def scenario():
            scheduler = AioScheduler()
            with pytest.raises(ValueError):
                scheduler.after(-1.0, lambda: None)

        run(scenario())


class TestAioNetwork:
    def test_delivery_and_trace(self):
        async def scenario():
            scheduler = AioScheduler()
            network = AioNetwork(scheduler, delay_model=FixedDelay(0.005))
            a, b = Echo(A, network), Echo(B, network)
            network.send(A, B, "hello")
            await asyncio.sleep(0.05)
            return b.received, network.trace

        received, trace = run(scenario())
        assert received == [(A, "hello")]
        assert len(trace.events_of(A, EventKind.SEND)) == 1
        assert len(trace.events_of(B, EventKind.RECV)) == 1

    def test_fifo_preserved_under_jitter(self):
        async def scenario():
            scheduler = AioScheduler()
            network = AioNetwork(scheduler, seed=3)  # jittered delays
            a, b = Echo(A, network), Echo(B, network)
            for i in range(30):
                network.send(A, B, i)
            for _ in range(200):
                if len(b.received) == 30:
                    break
                await asyncio.sleep(0.005)
            return [payload for _, payload in b.received]

        assert run(scenario()) == list(range(30))

    def test_crashed_sender_rejected(self):
        async def scenario():
            network = AioNetwork(AioScheduler())
            a = Echo(A, network)
            Echo(B, network)
            a.crash()
            with pytest.raises(ProcessCrashedError):
                network.send(A, B, "x")

        run(scenario())

    def test_unknown_sender_rejected(self):
        async def scenario():
            network = AioNetwork(AioScheduler())
            Echo(B, network)
            with pytest.raises(SimulationError):
                network.send(A, B, "x")

        run(scenario())

    def test_delivery_to_crashed_receiver_dropped(self):
        async def scenario():
            network = AioNetwork(AioScheduler(), delay_model=FixedDelay(0.005))
            a, b = Echo(A, network), Echo(B, network)
            network.send(A, B, "x")
            b.crash()
            await asyncio.sleep(0.05)
            return b.received

        assert run(scenario()) == []

    def test_crash_observers_fire(self):
        async def scenario():
            network = AioNetwork(AioScheduler())
            seen = []
            network.add_crash_observer(seen.append)
            a = Echo(A, network)
            a.crash()
            return seen

        assert run(scenario()) == [A]

    def test_duplicate_registration_rejected(self):
        async def scenario():
            network = AioNetwork(AioScheduler())
            Echo(A, network)
            with pytest.raises(SimulationError):
                Echo(A, network)

        run(scenario())
