"""Tests for the ASCII space-time diagram renderer."""

from __future__ import annotations

from repro.analysis.diagram import render, render_legend
from repro.ids import pid
from repro.model.events import Event, EventKind, MessageRecord

from conftest import make_cluster

A, B = pid("a"), pid("b")


def simple_events():
    m = MessageRecord(sender=A, receiver=B, payload="x")
    return [
        Event(proc=A, kind=EventKind.START, index=0),
        Event(proc=B, kind=EventKind.START, index=0),
        Event(proc=A, kind=EventKind.SEND, index=1, peer=B, message=m),
        Event(proc=B, kind=EventKind.RECV, index=1, peer=A, message=m),
        Event(proc=B, kind=EventKind.INSTALL, index=2, version=1, view=(A, B)),
        Event(proc=A, kind=EventKind.CRASH, index=2),
    ]


class TestRender:
    def test_one_row_per_process(self):
        text = render(simple_events())
        lines = [l for l in text.splitlines() if "|" in l]
        assert len(lines) == 2
        assert lines[0].startswith("a |") or lines[0].startswith("a  |") or "a" in lines[0]

    def test_glyphs_present(self):
        text = render(simple_events())
        assert "o" in text and "s" in text and "r" in text
        assert "V" in text and "X" in text

    def test_line_goes_blank_after_crash(self):
        events = simple_events() + [
            Event(proc=B, kind=EventKind.INTERNAL, index=3),
        ]
        text = render(events)
        a_line = next(
            l for l in text.splitlines() if "|" in l and l.split("|")[0].strip() == "a"
        )
        # After A's crash glyph there is no '-' continuation.
        after_crash = a_line.split("X", 1)[1]
        assert after_crash.strip() == ""

    def test_matching_send_recv_share_tag(self):
        text = render(simple_events())
        tag_line = text.splitlines()[0]
        # Exactly one message pair: tag 'a' appears twice.
        assert tag_line.count("a") == 2

    def test_kind_filter(self):
        events = simple_events()
        text = render(events, kinds={EventKind.CRASH})
        assert "X" in text and "s" not in text.split("|", 1)[1]

    def test_truncation_noted(self):
        events = simple_events() * 1  # base
        # Repeat INTERNAL events to exceed the column budget.
        long = list(events[:2]) + [
            Event(proc=B, kind=EventKind.INTERNAL, index=i) for i in range(1, 60)
        ]
        text = render(long, max_columns=10)
        assert "truncated" in text

    def test_row_order_override(self):
        text = render(simple_events(), processes=[B, A])
        rows = [l for l in text.splitlines() if "|" in l]
        assert rows[0].lstrip().startswith("b")

    def test_legend_covers_core_glyphs(self):
        legend = render_legend()
        for token in ("send", "recv", "install", "crash", "quit"):
            assert token in legend

    def test_real_cluster_trace_renders(self):
        cluster = make_cluster(4, seed=1)
        cluster.crash("p3", at=5.0)
        cluster.settle()
        text = render(
            cluster.trace.events,
            kinds={EventKind.INSTALL, EventKind.CRASH, EventKind.FAULTY},
        )
        assert text.count("V") == 3  # three survivors install version 1
        assert text.count("X") == 1
