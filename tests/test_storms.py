"""Randomised storm tests: safety must hold on every seed.

Each storm mixes crashes (some mid-broadcast), joins, and random delays;
every run is checked against the full GMP specification.  Where a majority
survives, liveness (final agreement among survivors) is also asserted.
"""

from __future__ import annotations

import random

import pytest

from repro.core.service import MembershipCluster
from repro.properties import check_gmp, format_report
from repro.sim.failures import crash_after_matching_sends, payload_type_is

BROADCAST_TYPES = payload_type_is("Commit", "ReconfigCommit", "Invite", "Propose")


def run_storm(seed: int) -> MembershipCluster:
    rng = random.Random(seed * 7919 + 13)
    n = rng.randint(4, 10)
    cluster = MembershipCluster.of_size(n, seed=seed)
    victims = rng.sample(
        [f"p{i}" for i in range(n)], k=rng.randint(1, max(1, (n - 1) // 2))
    )
    t = 5.0
    for victim in victims:
        if rng.random() < 0.4:
            crash_after_matching_sends(
                cluster.network,
                cluster.resolve(victim),
                BROADCAST_TYPES,
                after=rng.randint(1, 3),
            )
        else:
            cluster.crash(victim, at=t)
        t += rng.uniform(0.3, 25.0)
    if rng.random() < 0.5:
        cluster.join("j0", at=rng.uniform(10.0, 80.0))
    if rng.random() < 0.25:
        cluster.join("j1", at=rng.uniform(30.0, 120.0))
    cluster.start()
    cluster.settle(max_events=500_000)
    return cluster


@pytest.mark.parametrize("seed", range(40))
def test_storm_safety(seed):
    cluster = run_storm(seed)
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
    assert report.ok, format_report(report)


@pytest.mark.parametrize("seed", range(40, 60))
def test_storm_liveness_with_surviving_majority(seed):
    """Crashing a strict minority must end in agreement among survivors."""
    rng = random.Random(seed)
    n = rng.randint(5, 9)
    cluster = MembershipCluster.of_size(n, seed=seed)
    tolerable = (n + 1) // 2 - 1
    victims = rng.sample([f"p{i}" for i in range(n)], k=min(tolerable, 2))
    t = 5.0
    for victim in victims:
        cluster.crash(victim, at=t)
        t += rng.uniform(20.0, 40.0)  # spaced: each exclusion completes
    cluster.start()
    cluster.settle(max_events=500_000)
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=True)
    assert report.ok, format_report(report)
    view = cluster.agreed_view()
    assert {m.name for m in view} == {
        f"p{i}" for i in range(n) if f"p{i}" not in victims
    }


@pytest.mark.parametrize("seed", range(8))
def test_storm_with_heartbeat_detector(seed):
    """The realistic detector (with its spurious-suspicion risk) must keep
    the same safety guarantees."""
    cluster = MembershipCluster.of_size(
        6,
        seed=seed,
        detector="heartbeat",
        heartbeat_period=2.0,
        heartbeat_timeout=10.0,
    )
    cluster.start()
    cluster.crash("p3", at=15.0)
    cluster.run(until=16.0)  # past the crash, so agreement is non-trivial
    assert cluster.run_until_agreement(until=400.0)
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
    assert report.ok, format_report(report)
    assert "p3" not in {m.name for m in cluster.agreed_view()}
