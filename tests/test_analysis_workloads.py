"""Tests for the complexity formulas, message accounting, and workloads."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    breakdown,
    compressed_streak_total,
    compressed_update_messages,
    protocol_messages,
    reconfiguration_messages,
    standard_streak_total,
    tolerable_failures,
    two_phase_update_messages,
    worst_case_total,
)
from repro.workloads.churn import ChurnEvent, ChurnSchedule, mixed_churn, streak_schedule

from conftest import assert_gmp, make_cluster


class TestClosedForms:
    @pytest.mark.parametrize("n,expected", [(3, 4), (5, 10), (10, 25)])
    def test_two_phase(self, n, expected):
        assert two_phase_update_messages(n) == expected

    @pytest.mark.parametrize("n,expected", [(3, 3), (5, 7), (10, 17)])
    def test_compressed(self, n, expected):
        assert compressed_update_messages(n) == expected

    @pytest.mark.parametrize("n,expected", [(3, 6), (5, 16), (10, 41)])
    def test_reconfiguration(self, n, expected):
        assert reconfiguration_messages(n) == expected

    def test_streak_totals_match_paper(self):
        # (n-1)^2 for the compressed streak, averaging n-1 per exclusion.
        assert compressed_streak_total(10) == 81
        assert compressed_streak_total(10) / 9 == 9.0

    def test_standard_streak_costs_more(self):
        for n in range(3, 30):
            assert standard_streak_total(n) > compressed_streak_total(n)

    def test_standard_streak_extra_is_about_half_n_per_exclusion(self):
        n = 20
        extra_per_exclusion = (
            standard_streak_total(n) - compressed_streak_total(n)
        ) / (n - 1)
        assert n / 2 - 2 <= extra_per_exclusion <= n / 2 + 2

    @pytest.mark.parametrize("n,expected", [(4, 1), (5, 2), (6, 2), (7, 3), (9, 4)])
    def test_tolerable_failures_is_minority(self, n, expected):
        assert tolerable_failures(n) == expected

    def test_worst_case_is_quadratic(self):
        # Doubling n should roughly quadruple the worst-case total.
        assert worst_case_total(40) > 3 * worst_case_total(20)

    @given(st.integers(min_value=4, max_value=200))
    def test_ordering_of_best_cases(self, n):
        """compressed < two-phase < reconfiguration, at every size."""
        assert (
            compressed_update_messages(n)
            < two_phase_update_messages(n)
            < reconfiguration_messages(n)
        )

    def test_small_groups_rejected(self):
        with pytest.raises(ValueError):
            two_phase_update_messages(1)
        with pytest.raises(ValueError):
            reconfiguration_messages(2)


class TestMessageAccounting:
    def test_awareness_traffic_not_charged(self):
        cluster = make_cluster(5, seed=1, detector="scripted")
        cluster.suspect("p2", "p4", at=5.0)  # produces a FaultyNotice
        cluster.settle()
        counts = breakdown(cluster.trace)
        assert counts.awareness >= 1
        assert counts.algorithm == counts.total - counts.awareness

    def test_update_vs_reconfiguration_split(self):
        cluster = make_cluster(5, seed=2)
        cluster.crash("p0", at=5.0)
        cluster.crash("p4", at=60.0)
        cluster.settle()
        counts = breakdown(cluster.trace)
        assert counts.reconfiguration > 0 and counts.update > 0
        assert counts.algorithm == counts.update + counts.reconfiguration

    def test_protocol_messages_helper(self):
        cluster = make_cluster(4, seed=3)
        cluster.crash("p3", at=5.0)
        cluster.settle()
        assert protocol_messages(cluster.trace) == breakdown(cluster.trace).algorithm

    def test_format_is_readable(self):
        cluster = make_cluster(4, seed=4)
        cluster.crash("p3", at=5.0)
        cluster.settle()
        text = breakdown(cluster.trace).format()
        assert "Invite" in text and "algorithm=" in text


class TestChurnSchedules:
    def test_streak_schedule_spares_coordinator(self):
        schedule = streak_schedule(6, victims=3)
        assert schedule.crashes == 3
        assert all(e.subject != "p0" for e in schedule.events)

    def test_streak_schedule_can_include_coordinator(self):
        schedule = streak_schedule(6, victims=5, keep_coordinator=False)
        assert any(e.subject == "p0" for e in schedule.events)

    def test_streak_cannot_kill_everyone(self):
        with pytest.raises(ValueError):
            streak_schedule(4, victims=4)

    def test_mixed_churn_is_reproducible(self):
        one = mixed_churn(5, operations=20, seed=9)
        two = mixed_churn(5, operations=20, seed=9)
        assert one.events == two.events

    def test_mixed_churn_preserves_quorum(self):
        schedule = mixed_churn(6, operations=40, seed=10)
        alive = 6
        for event in schedule.events:
            alive += 1 if event.kind == "join" else -1
            assert alive >= 3

    def test_schedule_apply_runs_cleanly(self):
        cluster = make_cluster(6, seed=11)
        streak_schedule(6, victims=2, start=5.0, spacing=30.0).apply(cluster)
        cluster.settle()
        assert len(cluster.agreed_view()) == 4
        assert_gmp(cluster)

    def test_events_are_value_objects(self):
        assert ChurnEvent(1.0, "crash", "p1") == ChurnEvent(1.0, "crash", "p1")
        assert ChurnSchedule([ChurnEvent(1.0, "join", "x")]).joins == 1
