"""Unit tests for the seeded fault-plan layer (:mod:`repro.chaos.plan`)."""

from __future__ import annotations

import pytest

from repro.chaos import (
    CrashRestart,
    FaultPlan,
    FaultRule,
    Partition,
    category_is,
    payload_type_is,
)
from repro.detectors.heartbeat import Ping
from repro.ids import pid
from repro.model.events import MessageRecord

NAMES = ["n0", "n1", "n2", "n3"]


def record(src="a", dst="b", payload=None, category="protocol", incarnation=0):
    return MessageRecord(
        sender=pid(src, incarnation),
        receiver=pid(dst),
        payload=payload if payload is not None else Ping(nonce=1),
        category=category,
    )


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(kind="corrupt")

    def test_delay_rule_needs_positive_delay(self):
        with pytest.raises(ValueError):
            FaultRule(kind="delay", delay=0.0)

    def test_probability_range_enforced(self):
        with pytest.raises(ValueError):
            FaultRule(kind="drop", probability=1.5)

    def test_after_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultRule(kind="drop", after=0)


class TestRuleMatching:
    def test_window_bounds_are_half_open(self):
        rule = FaultRule(kind="drop", start=1.0, end=2.0)
        assert not rule.matches(record(), 0.5)
        assert rule.matches(record(), 1.0)
        assert not rule.matches(record(), 2.0)

    def test_src_dst_filters_by_name(self):
        rule = FaultRule(kind="drop", src="a", dst="b")
        assert rule.matches(record("a", "b"), 0.0)
        assert not rule.matches(record("c", "b"), 0.0)
        assert not rule.matches(record("a", "c"), 0.0)

    def test_names_survive_incarnation_bumps(self):
        # Rules address names, so a restarted victim (new incarnation) is
        # still covered by the same plan.
        rule = FaultRule(kind="drop", src="a")
        assert rule.matches(record("a", "b", incarnation=3), 0.0)

    def test_category_and_payload_type_filters(self):
        rule = FaultRule(kind="drop", category="detector", payload_types=("Ping",))
        assert rule.matches(record(category="detector"), 0.0)
        assert not rule.matches(record(category="protocol"), 0.0)
        pong = record(category="detector", payload=object())
        assert not rule.matches(pong, 0.0)

    def test_predicate_hook_uses_sim_failures_vocabulary(self):
        rule = FaultRule(kind="drop", predicate=payload_type_is("Ping"))
        assert rule.matches(record(), 0.0)
        assert not rule.matches(record(payload=object()), 0.0)
        assert category_is("detector")(record(category="detector"))


class TestDecide:
    def test_after_threshold_counts_per_channel(self):
        plan = FaultPlan(rules=[FaultRule(kind="drop", after=3)])
        # Frames 1 and 2 on the a->b channel pass; frame 3 drops.
        assert plan.decide(record(), 0.0) is None
        assert plan.decide(record(), 0.0) is None
        assert plan.decide(record(), 0.0).drop
        # A different channel has its own counter.
        assert plan.decide(record("c", "d"), 0.0) is None

    def test_count_caps_applications(self):
        plan = FaultPlan(rules=[FaultRule(kind="drop", count=1)])
        assert plan.decide(record(), 0.0).drop
        assert plan.decide(record(), 0.0) is None

    def test_probability_verdicts_are_seed_deterministic(self):
        def verdicts(seed):
            plan = FaultPlan(
                seed=seed, rules=[FaultRule(kind="drop", probability=0.5)]
            )
            return [plan.decide(record(), 0.0) is not None for _ in range(32)]

        assert verdicts(7) == verdicts(7)
        assert any(verdicts(7))  # p=0.5 over 32 frames: some drop...
        assert not all(verdicts(7))  # ...and some pass

    def test_partition_holds_until_window_end(self):
        plan = FaultPlan(partitions=[Partition(src="a", dst="b", start=1.0, end=2.0)])
        decision = plan.decide(record(), 1.5)
        assert decision is not None and not decision.drop
        assert decision.delay == pytest.approx(0.5)
        assert plan.decide(record(), 2.5) is None  # healed: flush, no hold
        assert plan.decide(record("b", "a"), 1.5) is None  # one-way only

    def test_drop_wins_over_delay_and_duplicate(self):
        plan = FaultPlan(
            rules=[
                FaultRule(kind="drop"),
                FaultRule(kind="delay", delay=1.0),
                FaultRule(kind="duplicate"),
            ]
        )
        decision = plan.decide(record(), 0.0)
        assert decision.drop

    def test_effects_merge_across_rules(self):
        plan = FaultPlan(
            rules=[
                FaultRule(kind="delay", delay=0.5),
                FaultRule(kind="delay", delay=0.25),
                FaultRule(kind="duplicate"),
            ]
        )
        decision = plan.decide(record(), 0.0)
        assert decision.delay == pytest.approx(0.75)
        assert decision.duplicates == 1


class TestPlanBookkeeping:
    def test_declare_dead(self):
        plan = FaultPlan()
        assert not plan.considers_dead("n1")
        plan.declare_dead("n1")
        assert plan.considers_dead("n1")

    def test_horizon_covers_every_fault(self):
        plan = FaultPlan(
            rules=[FaultRule(kind="drop", end=1.0)],
            partitions=[Partition(src="a", dst="b", start=0.0, end=3.0)],
            crashes=[CrashRestart("n1", at=1.0, restart_after=1.5)],
        )
        assert plan.horizon() == pytest.approx(3.0)


class TestGenerate:
    def test_same_seed_same_schedule(self):
        one = FaultPlan.generate(5, NAMES, 2.0).to_dict()
        two = FaultPlan.generate(5, NAMES, 2.0).to_dict()
        assert one == two

    def test_different_seeds_differ(self):
        assert FaultPlan.generate(5, NAMES, 2.0).to_dict() != FaultPlan.generate(
            6, NAMES, 2.0
        ).to_dict()

    def test_needs_three_members(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(0, ["a", "b"], 2.0)

    @pytest.mark.parametrize("seed", range(8))
    def test_heavy_faults_are_staggered(self, seed):
        """Crash-restart completes before the partition opens: stacking them
        can legally wipe out the whole group (majority lost everywhere), so
        generated plans must sequence them."""
        duration = 2.0
        plan = FaultPlan.generate(seed, NAMES, duration)
        (crash,) = plan.crashes
        (partition,) = plan.partitions
        assert crash.at + crash.restart_after < partition.start
        assert partition.end <= 0.8 * duration + 1e-9
        assert crash.victim not in (partition.src, partition.dst)
        # The blinded side is the coordinator at partition time: seniority
        # order means the first surviving name.
        survivors = [n for n in sorted(NAMES) if n != crash.victim]
        assert partition.dst == survivors[0]

    def test_memory_transport_restricts_duplicates_to_detector(self):
        tcp = FaultPlan.generate(3, NAMES, 2.0, transport="tcp")
        memory = FaultPlan.generate(3, NAMES, 2.0, transport="memory")
        tcp_dup = next(r for r in tcp.rules if r.kind == "duplicate")
        mem_dup = next(r for r in memory.rules if r.kind == "duplicate")
        assert tcp_dup.category is None
        assert mem_dup.category == "detector"
