"""Robustness tests: malformed inputs must fail loudly, never corrupt.

A membership service is a trust root; these tests fuzz its parsing
boundaries (the wire codec) and verify the property checkers are *sound*
detectors — a mutated trace of a correct run must be flagged.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import codec
from repro.codec import CodecError
from repro.ids import pid
from repro.model.events import Event, EventKind
from repro.properties import check_gmp

from conftest import make_cluster


class TestCodecFuzzing:
    @settings(max_examples=100)
    @given(st.binary(max_size=200))
    def test_random_bytes_never_crash_the_decoder(self, data):
        try:
            codec.decode_bytes(data)
        except CodecError:
            pass  # the only acceptable failure mode
        # Anything decoded successfully must be a well-formed 5-tuple.

    @settings(max_examples=100)
    @given(
        st.recursive(
            st.none() | st.booleans() | st.integers() | st.text(max_size=8),
            lambda children: st.lists(children, max_size=4)
            | st.dictionaries(st.text(max_size=6), children, max_size=4),
            max_leaves=12,
        )
    )
    def test_random_json_structures_never_crash(self, structure):
        try:
            codec.decode(structure)  # type: ignore[arg-type]
        except CodecError:
            pass

    def test_frame_with_tampered_body_types(self):
        frame = codec.encode(
            __import__("repro.core.messages", fromlist=["UpdateOk"]).UpdateOk(1),
            pid("a"),
            pid("b"),
        )
        frame["body"]["version"] = {"not": "an int"}
        with pytest.raises((CodecError, TypeError, ValueError)):
            codec.decode(frame)


def mutate_trace(events: list[Event], seed: int) -> list[Event]:
    """Inject one realistic corruption into a correct run's events."""
    rng = random.Random(seed)
    events = list(events)
    installs = [i for i, e in enumerate(events) if e.kind is EventKind.INSTALL]
    removes = [i for i, e in enumerate(events) if e.kind is EventKind.REMOVE]
    choice = rng.choice(["divergent-view", "drop-faulty", "skip-version"])
    if choice == "divergent-view" and installs:
        i = rng.choice(installs)
        e = events[i]
        assert e.view is not None
        mutated_view = tuple(reversed(e.view))
        if mutated_view == e.view and len(e.view) >= 1:
            mutated_view = e.view[:-1]
        events[i] = Event(
            proc=e.proc, kind=e.kind, index=e.index, time=e.time,
            version=e.version, view=mutated_view,
        )
    elif choice == "drop-faulty" and removes:
        i = rng.choice(removes)
        e = events[i]
        # Retarget the removal at a process nobody ever suspected.
        ghost = pid("ghost")
        events[i] = Event(
            proc=e.proc, kind=e.kind, index=e.index, time=e.time, peer=ghost,
        )
    elif installs:
        i = rng.choice(installs)
        e = events[i]
        events[i] = Event(
            proc=e.proc, kind=e.kind, index=e.index, time=e.time,
            version=(e.version or 0) + 7, view=e.view,
        )
    return events


class TestCheckerSoundness:
    @pytest.mark.parametrize("seed", range(10))
    def test_mutated_correct_runs_are_flagged(self, seed):
        cluster = make_cluster(5, seed=seed)
        cluster.crash("p3", at=5.0)
        cluster.settle()
        clean = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
        assert clean.ok
        mutated = mutate_trace(cluster.trace.events, seed)
        try:
            report = check_gmp(
                mutated, cluster.initial_view, check_liveness=False, check_cuts=False
            )
        except Exception:
            return  # structurally invalid is also a loud failure
        assert not report.ok, f"mutation (seed {seed}) went undetected"

    def test_checker_not_trivially_rejecting(self):
        # Soundness cuts both ways: an untouched correct run must pass.
        cluster = make_cluster(6, seed=99)
        cluster.crash("p0", at=5.0)
        cluster.join("x", at=40.0)
        cluster.settle()
        assert check_gmp(cluster.trace, cluster.initial_view).ok
