"""Integration tests: the join procedure and the fully online algorithm."""

from __future__ import annotations

from repro.ids import pid
from repro.model.events import EventKind
from repro.workloads.churn import mixed_churn

from conftest import assert_gmp, make_cluster, names


class TestBasicJoin:
    def test_joiner_admitted_with_state(self):
        cluster = make_cluster(4, seed=1)
        joiner = cluster.join("x", at=5.0)
        cluster.settle()
        assert names(cluster.agreed_view()) == ["p0", "p1", "p2", "p3", "x"]
        member = cluster.members[joiner]
        assert member.is_member and member.version == 1
        assert_gmp(cluster)

    def test_joiner_enters_at_lowest_rank(self):
        cluster = make_cluster(4, seed=2)
        cluster.join("x", at=5.0)
        cluster.settle()
        assert cluster.agreed_view()[-1].name == "x"

    def test_joiner_has_full_seq(self):
        # The state transfer carries the whole committed history, keeping
        # the version == |seq| invariant for late joiners.
        cluster = make_cluster(4, seed=3)
        cluster.crash("p3", at=5.0)
        cluster.join("x", at=40.0)
        cluster.settle()
        member = cluster.member("x")
        assert member.version == len(member.state.seq) == 2

    def test_multiple_joins_are_serialised(self):
        cluster = make_cluster(3, seed=4)
        cluster.join("x", at=5.0)
        cluster.join("y", at=5.5)
        cluster.join("z", at=6.0)
        cluster.settle()
        assert names(cluster.agreed_view()) == ["p0", "p1", "p2", "x", "y", "z"]
        assert cluster.agreed_version() == 3
        assert_gmp(cluster)

    def test_join_via_non_coordinator_contact_is_forwarded(self):
        cluster = make_cluster(4, seed=5)
        cluster.join("x", contact="p2", at=5.0)
        cluster.settle()
        assert "x" in names(cluster.agreed_view())
        assert_gmp(cluster)

    def test_joiner_rotates_contacts_when_first_is_dead(self):
        cluster = make_cluster(4, seed=6)
        cluster.crash("p0", at=1.0)
        cluster.join("x", contact="p0", at=30.0)
        cluster.settle()
        assert "x" in names(cluster.agreed_view())
        assert_gmp(cluster)


class TestRejoinIncarnations:
    def test_crashed_process_rejoins_as_new_incarnation(self):
        cluster = make_cluster(4, seed=7)
        cluster.crash("p3", at=5.0)
        cluster.settle()
        rejoined = cluster.join("p3")
        cluster.settle()
        assert rejoined == pid("p3", 1)
        view = cluster.agreed_view()
        assert pid("p3", 1) in view and pid("p3", 0) not in view
        assert_gmp(cluster)

    def test_gmp4_no_reinstatement_of_same_incarnation(self):
        cluster = make_cluster(4, seed=8)
        cluster.crash("p3", at=5.0)
        cluster.settle()
        cluster.join("p3")
        cluster.settle()
        # GMP-4 is checked over the whole run by assert_gmp; additionally
        # verify the old incarnation never reappears in any install.
        for event in cluster.trace.events_of_kind(EventKind.INSTALL):
            if event.time > 10.0:
                assert pid("p3", 0) not in (event.view or ())
        assert_gmp(cluster)


class TestJoinUnderFailures:
    def test_join_interleaved_with_exclusion(self):
        cluster = make_cluster(5, seed=9)
        cluster.crash("p4", at=5.0)
        cluster.join("x", at=5.5)
        cluster.settle()
        view = names(cluster.agreed_view())
        assert "x" in view and "p4" not in view
        assert_gmp(cluster)

    def test_join_during_reconfiguration(self):
        cluster = make_cluster(5, seed=10)
        cluster.crash("p0", at=5.0)  # triggers reconfiguration
        cluster.join("x", at=6.0)  # arrives mid-upheaval
        cluster.settle()
        view = names(cluster.agreed_view())
        assert "x" in view and "p0" not in view
        assert_gmp(cluster)

    def test_joiner_crashes_right_after_admission(self):
        cluster = make_cluster(4, seed=11)
        cluster.join("x", at=5.0)
        cluster.crash("x", at=40.0)
        cluster.settle()
        assert "x" not in names(cluster.agreed_view())
        assert_gmp(cluster)

    def test_new_coordinator_serves_join_queue(self):
        # The join request lands at p0, which dies before serving it; the
        # retry must reach the next coordinator.
        cluster = make_cluster(4, seed=12)
        cluster.crash("p0", at=4.9)
        cluster.join("x", contact="p1", at=30.0)
        cluster.settle()
        view = names(cluster.agreed_view())
        assert "x" in view and "p0" not in view
        assert_gmp(cluster)


class TestOnlineChurn:
    def test_mixed_schedule_stays_agreed(self):
        cluster = make_cluster(6, seed=13)
        schedule = mixed_churn(6, operations=12, seed=13, mean_gap=40.0)
        schedule.apply(cluster)
        cluster.settle(max_events=2_000_000)
        assert_gmp(cluster, liveness=False)
        assert cluster.agreed_view()  # survivors agree

    def test_long_streak_of_alternating_operations(self):
        cluster = make_cluster(5, seed=14)
        t = 5.0
        for i in range(6):
            cluster.join(f"x{i}", at=t)
            t += 40.0
            cluster.crash(f"x{i}", at=t)
            t += 40.0
        cluster.settle(max_events=2_000_000)
        assert names(cluster.agreed_view()) == ["p0", "p1", "p2", "p3", "p4"]
        assert cluster.agreed_version() == 12
        assert_gmp(cluster)
