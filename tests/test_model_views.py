"""Unit tests for Memb(p,c), Sys(c,S) and view-sequence extraction."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.ids import pid
from repro.model.cuts import Cut
from repro.model.events import Event, EventKind
from repro.model.history import history_of
from repro.model.views import (
    extract_system_views,
    is_down,
    local_view,
    system_view,
    up_processes,
    view_sequences,
)

A, B, C = pid("a"), pid("b"), pid("c")
INITIAL = [A, B, C]


def run_events(*specs):
    """Build per-process event lists from (proc, kind, peer/version/view)."""
    counters: dict = {}
    events = []
    for spec in specs:
        proc = spec[0]
        if proc not in counters:
            events.append(Event(proc=proc, kind=EventKind.START, index=0))
            counters[proc] = 1
        kind = spec[1]
        kw = spec[2] if len(spec) > 2 else {}
        events.append(Event(proc=proc, kind=kind, index=counters[proc], **kw))
        counters[proc] += 1
    return events


def hist(events):
    return {p: history_of(events, p) for p in {e.proc for e in events}}


class TestDownUp:
    def test_down_after_crash(self):
        events = run_events((A, EventKind.CRASH))
        assert is_down(A, Cut({A: 2}), hist(events))

    def test_not_down_before_crash_in_cut(self):
        events = run_events((A, EventKind.CRASH))
        assert not is_down(A, Cut({A: 1}), hist(events))

    def test_quit_counts_as_down(self):
        events = run_events((A, EventKind.QUIT))
        assert is_down(A, Cut({A: 2}), hist(events))

    def test_up_processes(self):
        events = run_events((A, EventKind.CRASH), (B, EventKind.INTERNAL))
        up = up_processes(Cut({A: 2, B: 2}), hist(events))
        assert up == {B}


class TestLocalView:
    def test_initial_view(self):
        events = run_events((A, EventKind.INTERNAL))
        assert local_view(A, Cut({A: 1}), hist(events), INITIAL) == tuple(INITIAL)

    def test_removal_folds(self):
        events = run_events((A, EventKind.REMOVE, {"peer": B}))
        view = local_view(A, Cut({A: 2}), hist(events), INITIAL)
        assert view == (A, C)

    def test_add_folds_at_end(self):
        d = pid("d")
        events = run_events((A, EventKind.ADD, {"peer": d}))
        view = local_view(A, Cut({A: 2}), hist(events), INITIAL)
        assert view == (A, B, C, d)

    def test_undefined_when_down(self):
        events = run_events((A, EventKind.CRASH))
        assert local_view(A, Cut({A: 2}), hist(events), INITIAL) is None

    def test_remove_absent_member_raises(self):
        events = run_events((A, EventKind.REMOVE, {"peer": pid("x")}))
        with pytest.raises(TraceError):
            local_view(A, Cut({A: 2}), hist(events), INITIAL)

    def test_double_add_raises(self):
        events = run_events((A, EventKind.ADD, {"peer": B}))
        with pytest.raises(TraceError):
            local_view(A, Cut({A: 2}), hist(events), INITIAL)


class TestSystemView:
    def test_agreeing_views_define_system_view(self):
        events = run_events(
            (A, EventKind.REMOVE, {"peer": C}),
            (B, EventKind.REMOVE, {"peer": C}),
        )
        cut = Cut({A: 2, B: 2})
        assert system_view(cut, [A, B], hist(events), INITIAL) == (A, B)

    def test_disagreeing_views_are_undefined(self):
        events = run_events((A, EventKind.REMOVE, {"peer": C}), (B, EventKind.INTERNAL))
        cut = Cut({A: 2, B: 2})
        assert system_view(cut, [A, B], hist(events), INITIAL) is None

    def test_down_members_do_not_determine(self):
        # B crashed, so only A's local view determines Sys(c, {A, B}).
        events = run_events(
            (A, EventKind.REMOVE, {"peer": C}),
            (B, EventKind.CRASH),
        )
        cut = Cut({A: 2, B: 2})
        assert system_view(cut, [A, B], hist(events), INITIAL) == (A, B)

    def test_all_down_is_undefined(self):
        events = run_events((A, EventKind.CRASH), (B, EventKind.CRASH))
        cut = Cut({A: 2, B: 2})
        assert system_view(cut, [A, B], hist(events), INITIAL) is None


class TestViewSequences:
    def test_install_events_build_sequences(self):
        events = run_events(
            (A, EventKind.INSTALL, {"version": 1, "view": (A, B)}),
            (A, EventKind.INSTALL, {"version": 2, "view": (A,)}),
        )
        seqs = view_sequences(events)
        assert [v.version for v in seqs[A]] == [1, 2]

    def test_non_monotone_versions_raise(self):
        events = run_events(
            (A, EventKind.INSTALL, {"version": 2, "view": (A,)}),
            (A, EventKind.INSTALL, {"version": 1, "view": (A, B)}),
        )
        with pytest.raises(TraceError):
            view_sequences(events)

    def test_install_without_view_raises(self):
        events = run_events((A, EventKind.INSTALL, {"version": 1}))
        with pytest.raises(TraceError):
            view_sequences(events)

    def test_extract_agreeing_system_views(self):
        events = run_events(
            (A, EventKind.INSTALL, {"version": 1, "view": (A, B)}),
            (B, EventKind.INSTALL, {"version": 1, "view": (A, B)}),
        )
        views = extract_system_views(events)
        assert len(views) == 1 and views[0].members == (A, B)

    def test_extract_flags_disagreement(self):
        events = run_events(
            (A, EventKind.INSTALL, {"version": 1, "view": (A, B)}),
            (B, EventKind.INSTALL, {"version": 1, "view": (B, C)}),
        )
        with pytest.raises(TraceError):
            extract_system_views(events)
