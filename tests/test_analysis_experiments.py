"""Tests for the programmatic experiment-table generator."""

from __future__ import annotations

from repro.analysis.experiments import baseline_table, best_case_table, report


class TestBestCaseTable:
    def test_measured_matches_paper_exactly_for_two_phase(self):
        table = best_case_table(sizes=[4, 8])
        for row in table.rows:
            assert row[1] == row[2]  # 3n-5 column == measured column

    def test_render_is_aligned(self):
        text = best_case_table(sizes=[4]).render()
        lines = text.splitlines()
        assert len({len(l) for l in lines[1:]}) == 1  # equal-width rows

    def test_small_groups_skip_compressed_column(self):
        table = best_case_table(sizes=[4])
        assert table.rows[0][4] == "-"


class TestBaselineTable:
    def test_ratios_grow_with_n(self):
        table = baseline_table(sizes=[6, 16])
        ratio_small = float(table.rows[0][3].strip("()x"))
        ratio_large = float(table.rows[1][3].strip("()x"))
        assert ratio_large > ratio_small


class TestReport:
    def test_report_contains_pointers(self):
        text = report()
        assert "EXPERIMENTS.md" in text and "benchmarks/" in text
