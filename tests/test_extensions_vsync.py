"""Tests for view-synchronous multicast: the ISIS layer on the membership."""

from __future__ import annotations

import random

import pytest

from repro.core.service import MembershipCluster
from repro.extensions.vsync import VsyncLayer
from repro.ids import pid
from repro.sim.failures import crash_after_matching_sends, payload_type_is
from repro.sim.network import FixedDelay

from conftest import assert_gmp, make_cluster


def cluster_with_vsync(n: int = 4, **kwargs):
    cluster = make_cluster(n, **kwargs)
    layers = {p: VsyncLayer(member) for p, member in cluster.members.items()}
    return cluster, layers


def surviving_layers(cluster, layers):
    return {p: layers[p] for p, m in cluster.members.items() if m.is_member}


class TestBasicMulticast:
    def test_all_members_deliver(self):
        cluster, layers = cluster_with_vsync()
        cluster.run(until=5.0)
        layers[pid("p1")].multicast("hello")
        cluster.settle()
        for layer in layers.values():
            assert [d.payload for d in layer.deliveries] == ["hello"]

    def test_sender_delivers_its_own_message_immediately(self):
        cluster, layers = cluster_with_vsync()
        cluster.run(until=5.0)
        layers[pid("p2")].multicast("mine")
        assert layers[pid("p2")].deliveries[0].payload == "mine"

    def test_per_sender_fifo(self):
        cluster, layers = cluster_with_vsync()
        cluster.run(until=5.0)
        for i in range(10):
            layers[pid("p1")].multicast(i)
        cluster.settle()
        for layer in layers.values():
            from_p1 = [d.payload for d in layer.deliveries if d.origin == pid("p1")]
            assert from_p1 == list(range(10))

    def test_view_attribution(self):
        cluster, layers = cluster_with_vsync(5)
        cluster.run(until=5.0)
        layers[pid("p1")].multicast("in-view-0")
        cluster.settle()
        cluster.crash("p4", at=cluster.scheduler.now + 1.0)
        cluster.settle()
        layers[pid("p1")].multicast("in-view-1")
        cluster.settle()
        layer = layers[pid("p2")]
        assert [d.payload for d in layer.delivered_in(0)] == ["in-view-0"]
        assert [d.payload for d in layer.delivered_in(1)] == ["in-view-1"]

    def test_non_member_cannot_multicast(self):
        cluster, layers = cluster_with_vsync()
        cluster.crash("p3", at=5.0)
        cluster.settle()
        with pytest.raises(RuntimeError):
            layers[pid("p3")].multicast("ghost")

    def test_delivery_callback_invoked(self):
        cluster = make_cluster(3)
        received = []
        layer = VsyncLayer(cluster.member("p0"), deliver=received.append)
        VsyncLayer(cluster.member("p1"))
        VsyncLayer(cluster.member("p2"))
        cluster.run(until=5.0)
        layer.multicast("x")
        cluster.settle()
        assert [d.payload for d in received] == ["x"]


class TestSameSetUnderSenderCrash:
    def test_partial_multicast_is_flushed_to_all_survivors(self):
        """The defining vsync scenario: a sender crashes after its multicast
        reached only one member; the flush closes the set."""
        cluster, layers = cluster_with_vsync(5, delay_model=FixedDelay(1.0))
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve("p3"),
            payload_type_is("VsMessage"),
            after=1,
            detail="sender dies mid-multicast",
        )
        cluster.run(until=5.0)
        layers[pid("p3")].multicast("last words")
        cluster.settle()  # p3 crashed mid-broadcast; membership excludes it
        survivors = surviving_layers(cluster, layers)
        assert len(survivors) == 4
        sets = {p: layer.delivered_set(0) for p, layer in survivors.items()}
        assert len(set(map(frozenset, sets.values()))) == 1
        # ...and the set is non-empty: at least one survivor got the partial
        # broadcast and the flush spread it.
        assert all(sets[p] for p in sets)
        assert_gmp(cluster)

    def test_unheard_multicast_is_dropped_everywhere(self):
        """If the partial multicast reached nobody (first send went to a
        crashed process), no survivor delivers it — same set, empty."""
        cluster, layers = cluster_with_vsync(5, delay_model=FixedDelay(1.0))
        cluster.run(until=3.0)
        # p4 crashes first; p3's multicast broadcast order starts at p0...
        # use broadcast_first to aim the single send at the dead p4.
        cluster.member("p3").broadcast_first = (pid("p4"),)
        cluster.crash("p4", at=4.0)
        cluster.run(until=5.0)
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve("p3"),
            payload_type_is("VsMessage"),
            after=1,
            detail="multicast reached only the dead",
        )
        layers[pid("p3")].multicast("heard by no one")
        cluster.settle()
        survivors = surviving_layers(cluster, layers)
        for p, layer in survivors.items():
            assert layer.delivered_set(0) == set()

    def test_sender_crash_after_full_broadcast_needs_no_flush(self):
        cluster, layers = cluster_with_vsync(4, delay_model=FixedDelay(1.0))
        cluster.run(until=5.0)
        layers[pid("p2")].multicast("complete")
        cluster.crash("p2", at=cluster.scheduler.now + 0.5)
        cluster.settle()
        survivors = surviving_layers(cluster, layers)
        for layer in survivors.values():
            assert [d.payload for d in layer.delivered_in(0)] == ["complete"]

    def test_flush_covers_messages_from_older_views(self):
        """A sender's partial multicast in view v is still flushed when the
        sender is only excluded several views later."""
        cluster, layers = cluster_with_vsync(6, delay_model=FixedDelay(1.0))
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve("p4"),
            payload_type_is("VsMessage"),
            after=1,
        )
        cluster.run(until=5.0)
        layers[pid("p4")].multicast("from view 0")  # p4 dies mid-broadcast
        # Another exclusion happens first (p5), moving everyone to view 1
        # before p4's own exclusion in view 2.
        cluster.crash("p5", at=6.0)
        cluster.settle()
        survivors = surviving_layers(cluster, layers)
        sets = [frozenset(layer.delivered_set(0)) for layer in survivors.values()]
        assert len(set(sets)) == 1
        assert sets[0]  # the view-0 message survived into every survivor
        assert_gmp(cluster)


class TestSameSetRandomised:
    @pytest.mark.parametrize("seed", range(12))
    def test_survivor_sets_agree_per_view(self, seed):
        rng = random.Random(seed * 131 + 7)
        n = rng.randint(4, 7)
        cluster = MembershipCluster.of_size(n, seed=seed)
        layers = {p: VsyncLayer(m) for p, m in cluster.members.items()}
        # Arm a mid-multicast crash for one random sender.
        victim = f"p{rng.randint(1, n - 1)}"
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve(victim),
            payload_type_is("VsMessage"),
            after=rng.randint(1, n - 1),
        )
        cluster.start()
        cluster.run(until=5.0)
        # Everyone chats; the victim's multicast eventually kills it.
        for i in range(rng.randint(3, 10)):
            sender = pid(f"p{rng.randint(0, n - 1)}")
            if cluster.members[sender].is_member:
                layers[sender].multicast(f"m{i}")
                cluster.run(until=cluster.scheduler.now + rng.uniform(0.1, 3.0))
        cluster.settle(max_events=500_000)
        survivors = surviving_layers(cluster, layers)
        if not survivors:
            return
        versions = {
            version
            for layer in survivors.values()
            for version in layer._seen  # noqa: SLF001 - test introspection
        }
        for version in versions:
            sets = {frozenset(l.delivered_set(version)) for l in survivors.values()}
            assert len(sets) == 1, f"view {version} sets diverge (seed {seed})"
        assert_gmp(cluster, liveness=False)


class TestVsyncUnderChurn:
    def test_same_set_through_coordinator_reconfiguration(self):
        cluster, layers = cluster_with_vsync(6, delay_model=FixedDelay(1.0))
        cluster.run(until=5.0)
        layers[pid("p2")].multicast("before")
        cluster.run(until=6.0)
        cluster.crash("p0", at=7.0)  # coordinator dies; reconfiguration
        cluster.settle()
        layers[pid("p2")].multicast("after")
        cluster.settle()
        survivors = surviving_layers(cluster, layers)
        for version in (0, 1):
            sets = {frozenset(l.delivered_set(version)) for l in survivors.values()}
            assert len(sets) == 1
        assert_gmp(cluster)

    def test_joiner_participates_in_new_views_only(self):
        cluster, layers = cluster_with_vsync(4)
        cluster.run(until=5.0)
        layers[pid("p1")].multicast("pre-join")
        cluster.settle()
        joiner = cluster.join("x")
        cluster.settle()
        layers[joiner] = VsyncLayer(cluster.members[joiner])
        layers[pid("p1")].multicast("post-join")
        cluster.settle()
        # The joiner delivers only the post-join message (view 1)...
        assert [d.payload for d in layers[joiner].deliveries] == ["post-join"]
        # ...and everyone attributes it to view 1.
        for p, layer in surviving_layers(cluster, layers).items():
            assert [d.payload for d in layer.delivered_in(1)] == ["post-join"]

    def test_multicast_storm_with_two_failures(self):
        cluster, layers = cluster_with_vsync(7, delay_model=FixedDelay(1.0))
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve("p5"),
            payload_type_is("VsMessage"),
            after=2,
        )
        cluster.run(until=5.0)
        for i in range(4):
            layers[pid("p1")].multicast(f"a{i}")
            layers[pid("p2")].multicast(f"b{i}")
        cluster.run(until=6.0)
        layers[pid("p5")].multicast("torn")  # kills p5 mid-broadcast
        cluster.crash("p6", at=8.0)
        cluster.settle()
        survivors = surviving_layers(cluster, layers)
        versions = {
            v for layer in survivors.values() for v in layer._seen  # noqa: SLF001
        }
        for version in versions:
            sets = {frozenset(l.delivered_set(version)) for l in survivors.values()}
            assert len(sets) == 1
        assert_gmp(cluster)
