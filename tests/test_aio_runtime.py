"""Tests for the asyncio runtime — the same state machines, live."""

from __future__ import annotations

import asyncio

import pytest

from repro.aio import AioMembershipRuntime
from repro.properties import check_gmp, format_report


def run(coro):
    return asyncio.run(coro)


def make_runtime(n: int = 5, **kwargs) -> AioMembershipRuntime:
    kwargs.setdefault("detector", "heartbeat")
    kwargs.setdefault("heartbeat_period", 0.02)
    kwargs.setdefault("heartbeat_timeout", 0.12)
    return AioMembershipRuntime([f"n{i}" for i in range(n)], **kwargs)


class TestLiveCluster:
    def test_crash_is_detected_and_excluded(self):
        async def scenario():
            runtime = make_runtime(5)
            runtime.start()
            await runtime.run_for(0.1)
            runtime.crash("n2")
            assert await runtime.wait_for_agreement(timeout=10.0)
            return runtime

        runtime = run(scenario())
        views = runtime.views()
        assert all("n2" not in {m.name for m in view} for _, view in views.values())
        report = check_gmp(runtime.trace, runtime.initial_view, check_liveness=False)
        assert report.ok, format_report(report)

    def test_coordinator_crash_reconfigures_live(self):
        async def scenario():
            runtime = make_runtime(5)
            runtime.start()
            await runtime.run_for(0.1)
            runtime.crash("n0")
            assert await runtime.wait_for_agreement(timeout=10.0)
            return runtime

        runtime = run(scenario())
        for member in runtime.live_members():
            assert member.state is not None and member.state.mgr.name == "n1"
        report = check_gmp(runtime.trace, runtime.initial_view, check_liveness=False)
        assert report.ok, format_report(report)

    def test_join_live(self):
        async def scenario():
            runtime = make_runtime(4)
            runtime.start()
            await runtime.run_for(0.05)
            joiner = runtime.join("n9")
            deadline = asyncio.get_event_loop().time() + 10.0
            while asyncio.get_event_loop().time() < deadline:
                if runtime.members[joiner].is_member and runtime.in_agreement():
                    break
                await asyncio.sleep(0.02)
            return runtime, joiner

        runtime, joiner = run(scenario())
        assert runtime.members[joiner].is_member
        report = check_gmp(runtime.trace, runtime.initial_view, check_liveness=False)
        assert report.ok, format_report(report)

    def test_oracle_detector_variant(self):
        async def scenario():
            runtime = make_runtime(4, detector="oracle", oracle_delay=0.02)
            runtime.start()
            await runtime.run_for(0.05)
            runtime.crash("n3")
            assert await runtime.wait_for_agreement(timeout=10.0)
            return runtime

        runtime = run(scenario())
        assert len(runtime.live_members()) == 3

    def test_crash_then_rejoin_as_new_incarnation(self):
        async def scenario():
            runtime = make_runtime(4)
            runtime.start()
            await runtime.run_for(0.05)
            runtime.crash("n1")
            await runtime.wait_for_agreement(timeout=10.0)
            rejoined = runtime.join("n1")
            deadline = asyncio.get_event_loop().time() + 10.0
            while asyncio.get_event_loop().time() < deadline:
                if runtime.members[rejoined].is_member and runtime.in_agreement():
                    break
                await asyncio.sleep(0.02)
            return runtime, rejoined

        runtime, rejoined = run(scenario())
        assert rejoined.incarnation == 1
        assert runtime.members[rejoined].is_member
        report = check_gmp(runtime.trace, runtime.initial_view, check_liveness=False)
        assert report.ok, format_report(report)

    def test_runtime_rejects_double_start(self):
        async def scenario():
            runtime = make_runtime(3)
            runtime.start()
            with pytest.raises(RuntimeError):
                runtime.start()

        run(scenario())


class TestBackgroundTasks:
    def test_spawn_retains_task_until_done(self):
        """The runtime holds a strong reference to background tasks (the
        loop itself only keeps weak ones) and drops it on completion."""

        async def scenario():
            runtime = make_runtime(2)
            release = asyncio.Event()

            async def waits():
                await release.wait()

            task = runtime._spawn(waits())
            held_while_running = task in runtime._tasks
            release.set()
            await task
            await asyncio.sleep(0)
            return held_while_running, task in runtime._tasks

        held, still_held = run(scenario())
        assert held is True
        assert still_held is False

    def test_spawn_routes_exception_to_loop_handler(self):
        """A failing background task must surface through the loop's
        exception handler, never vanish with the task object."""

        async def scenario():
            runtime = make_runtime(2)
            seen: list[dict] = []
            asyncio.get_running_loop().set_exception_handler(
                lambda loop, ctx: seen.append(ctx)
            )

            async def fails():
                raise RuntimeError("boom in background")

            task = runtime._spawn(fails())
            await asyncio.gather(task, return_exceptions=True)
            await asyncio.sleep(0)  # let the done-callback run
            return seen

        seen = run(scenario())
        assert len(seen) == 1
        assert isinstance(seen[0]["exception"], RuntimeError)
        assert "background runtime task failed" in seen[0]["message"]

    def test_stop_async_cancels_pending_tasks(self):
        async def scenario():
            runtime = make_runtime(2)

            async def hangs():
                await asyncio.Event().wait()

            task = runtime._spawn(hangs())
            await runtime.stop_async()
            return task.cancelled(), runtime._tasks

        cancelled, remaining = run(scenario())
        assert cancelled is True
        assert not remaining
