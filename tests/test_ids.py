"""Unit tests for process identity and rank arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ids import (
    ProcessId,
    higher_ranked,
    lower_ranked,
    majority_size,
    manager_of,
    ordered_view,
    pid,
    rank_of,
)


class TestProcessId:
    def test_equality_by_value(self):
        assert pid("a") == ProcessId("a", 0)

    def test_incarnations_are_distinct_identities(self):
        assert pid("a", 0) != pid("a", 1)

    def test_next_incarnation_increments(self):
        assert pid("a", 3).next_incarnation() == pid("a", 4)

    def test_str_omits_zero_incarnation(self):
        assert str(pid("a")) == "a"

    def test_str_shows_nonzero_incarnation(self):
        assert str(pid("a", 2)) == "a#2"

    def test_hashable_and_usable_in_sets(self):
        assert len({pid("a"), pid("a"), pid("b")}) == 2

    def test_ordering_is_lexicographic(self):
        assert pid("a", 1) < pid("b", 0)
        assert pid("a", 0) < pid("a", 1)


class TestRank:
    def setup_method(self):
        self.view = ordered_view(p(*"mpqrs"))

    def test_manager_has_highest_rank(self):
        assert rank_of(pid("m"), self.view) == 5

    def test_most_junior_has_rank_one(self):
        assert rank_of(pid("s"), self.view) == 1

    def test_rank_of_non_member_raises(self):
        with pytest.raises(ValueError):
            rank_of(pid("x"), self.view)

    def test_removal_moves_juniors_up_one_position(self):
        # Removing q moves r and s up one position; their rank value
        # (distance from the bottom) is preserved while every senior's
        # drops by one, keeping rank(Mgr) == |view| (Section 4.2).
        after = ordered_view(p("m", "p", "r", "s"))
        assert rank_of(pid("r"), after) == rank_of(pid("r"), self.view)
        assert rank_of(pid("m"), after) == len(after)
        assert list(after).index(pid("r")) == list(self.view).index(pid("r")) - 1

    def test_relative_rank_stable_under_removal_of_others(self):
        after = ordered_view(p("m", "p", "r", "s"))
        assert rank_of(pid("m"), after) > rank_of(pid("p"), after)
        assert rank_of(pid("r"), after) > rank_of(pid("s"), after)

    def test_manager_of_is_first(self):
        assert manager_of(self.view) == pid("m")

    def test_manager_of_empty_view_raises(self):
        with pytest.raises(ValueError):
            manager_of(())

    def test_higher_ranked(self):
        assert higher_ranked(pid("q"), self.view) == (pid("m"), pid("p"))

    def test_higher_ranked_of_manager_is_empty(self):
        assert higher_ranked(pid("m"), self.view) == ()

    def test_lower_ranked(self):
        assert lower_ranked(pid("q"), self.view) == (pid("r"), pid("s"))

    def test_lower_ranked_of_most_junior_is_empty(self):
        assert lower_ranked(pid("s"), self.view) == ()


class TestMajority:
    @pytest.mark.parametrize(
        "size,expected",
        [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (6, 4), (7, 4), (10, 6)],
    )
    def test_majority_size(self, size, expected):
        assert majority_size(size) == expected

    def test_majority_of_empty_raises(self):
        with pytest.raises(ValueError):
            majority_size(0)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_majority_is_more_than_half(self, n):
        assert 2 * majority_size(n) > n

    @given(st.integers(min_value=1, max_value=10_000))
    def test_two_majorities_always_intersect(self, n):
        # mu + mu > n, so two majority subsets of the same set intersect.
        assert majority_size(n) + majority_size(n) > n

    @given(st.integers(min_value=1, max_value=10_000))
    def test_paper_proposition_7_1(self, n):
        """mu(S) + mu(S') > |S'| when |S'| = |S| + 1 — neighbouring views."""
        assert majority_size(n) + majority_size(n + 1) > n + 1

    @given(st.integers(min_value=2, max_value=10_000))
    def test_neighbouring_majorities_intersect_downward(self, n):
        """Same for a removal: majorities of sizes n and n-1 overlap in the
        larger view."""
        assert majority_size(n) + majority_size(n - 1) > n - 1


class TestOrderedView:
    def test_preserves_order(self):
        assert ordered_view(p("b", "a")) == (pid("b"), pid("a"))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ordered_view(p("a", "a"))

    def test_empty_is_allowed(self):
        assert ordered_view([]) == ()


def p(*parts: str):
    return [pid(name) for name in parts]
