"""Direct unit tests for the lint CFG builder and worklist dataflow engine.

These exercise the graph shapes the flow-sensitive rule families rely on:
branch edges and joins, loop back-edges with break/continue, the coarse
try/except approximation, opacity of nested (async) defs, and the two
ready-made analyses (reaching definitions, await-crossing reachability).
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.lint.cfg import (
    CFG,
    Block,
    build_cfg,
    expr_contains_await,
    iter_cfgs,
    stmt_contains_await,
)
from repro.lint.dataflow import (
    ReachingDefinitions,
    crossed_await_paths,
    merge_intersection,
    merge_union,
    reaches,
    solve_forward,
)


def cfg_of(source: str, name: str | None = None) -> CFG:
    """Build the CFG of one function in ``source`` (the first, by default)."""
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if name is None or node.name == name:
                return build_cfg(node)
    raise AssertionError(f"no function {name!r} in source")


def block_with(cfg: CFG, fragment: str) -> Block:
    """The unique block whose statement source contains ``fragment``."""
    hits = [
        b
        for b in cfg.blocks
        if any(fragment in ast.unparse(s) for s in b.stmts)
    ]
    assert len(hits) == 1, f"{fragment!r} found in {len(hits)} blocks"
    return hits[0]


def edge_kinds(src: Block) -> set[tuple[int, str]]:
    return {(b.bid, kind) for b, kind in src.succs}


# ---------------------------------------------------------------------------
# branching
# ---------------------------------------------------------------------------


class TestBranching:
    def test_if_else_true_false_edges_and_join(self):
        cfg = cfg_of(
            """
            def f(x):
                a = 1
                if x:
                    b = 2
                else:
                    c = 3
                d = 4
            """
        )
        head = block_with(cfg, "a = 1")
        assert head.test is not None and ast.unparse(head.test) == "x"
        kinds = {kind for _, kind in head.succs}
        assert kinds == {"true", "false"}
        true_block = block_with(cfg, "b = 2")
        false_block = block_with(cfg, "c = 3")
        join = block_with(cfg, "d = 4")
        assert (join.bid, "next") in edge_kinds(true_block)
        assert (join.bid, "next") in edge_kinds(false_block)
        assert (cfg.exit.bid, "next") in edge_kinds(join)

    def test_if_without_else_false_edge_skips_body(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                b = 2
            """
        )
        head = cfg.entry
        after = block_with(cfg, "b = 2")
        assert (after.bid, "false") in edge_kinds(head)

    def test_return_in_branch_reaches_exit_directly(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    return 1
                return 2
            """
        )
        ret1 = block_with(cfg, "return 1")
        ret2 = block_with(cfg, "return 2")
        assert (cfg.exit.bid, "next") in edge_kinds(ret1)
        assert (cfg.exit.bid, "next") in edge_kinds(ret2)
        # Both paths terminate: no spurious join block reaches the exit twice.
        assert cfg.exit.bid in cfg.reachable()

    def test_dead_code_after_return_is_unreachable(self):
        cfg = cfg_of(
            """
            def f():
                return 1
                x = 2
            """
        )
        dead = block_with(cfg, "x = 2")
        assert dead.bid not in cfg.reachable()
        assert not dead.preds


# ---------------------------------------------------------------------------
# loops
# ---------------------------------------------------------------------------


class TestLoops:
    def test_while_back_edge_and_false_exit(self):
        cfg = cfg_of(
            """
            def f(n):
                while n > 0:
                    n -= 1
                done = True
            """
        )
        body = block_with(cfg, "n -= 1")
        after = block_with(cfg, "done = True")
        (head,) = [b for b, k in after.preds if k == "false"]
        assert ast.unparse(head.test) == "n > 0"
        assert (body.bid, "true") in edge_kinds(head)
        assert (head.bid, "next") in edge_kinds(body)  # back edge

    def test_while_true_has_no_false_edge(self):
        cfg = cfg_of(
            """
            def f():
                while True:
                    pass
            """
        )
        heads = [b for b in cfg.blocks if b.test is not None]
        assert len(heads) == 1
        assert all(kind != "false" for _, kind in heads[0].succs)
        assert cfg.exit.bid not in cfg.reachable()

    def test_break_jumps_to_after_continue_to_head(self):
        cfg = cfg_of(
            """
            def f(xs):
                for x in xs:
                    if x < 0:
                        break
                    if x == 0:
                        continue
                    use(x)
                tail()
            """
        )
        brk = block_with(cfg, "break")
        cont = block_with(cfg, "continue")
        after = block_with(cfg, "tail()")
        (head,) = [b for b, k in after.preds if k == "false"]
        assert (after.bid, "next") in edge_kinds(brk)
        assert (head.bid, "next") in edge_kinds(cont)
        # continue skips use(x): no edge from the continue block to it.
        use = block_with(cfg, "use(x)")
        assert (use.bid, "next") not in edge_kinds(cont)

    def test_nested_loops_resolve_innermost(self):
        cfg = cfg_of(
            """
            def f(grid):
                for row in grid:
                    for cell in row:
                        if cell:
                            break
                    mark(row)
                finish()
            """
        )
        brk = block_with(cfg, "break")
        mark = block_with(cfg, "mark(row)")
        # break leaves the inner loop only: it lands on the inner after
        # block, which falls through to mark(row)'s block region — never
        # straight to finish().
        finish = block_with(cfg, "finish()")
        assert (finish.bid, "next") not in edge_kinds(brk)
        assert reaches(cfg, brk, mark)


# ---------------------------------------------------------------------------
# try / except / finally
# ---------------------------------------------------------------------------


class TestTryExcept:
    def test_body_blocks_gain_except_edges_to_handler_and_raise_exit(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    risky()
                except ValueError:
                    handle()
                done()
            """
        )
        body = block_with(cfg, "risky()")
        handler = block_with(cfg, "handle()")
        assert (handler.bid, "except") in edge_kinds(body)
        assert (cfg.raise_exit.bid, "except") in edge_kinds(body)
        done = block_with(cfg, "done()")
        assert reaches(cfg, body, done)
        assert reaches(cfg, handler, done)

    def test_bare_except_suppresses_raise_exit_edge(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    risky()
                except:
                    pass
            """
        )
        body = block_with(cfg, "risky()")
        assert (cfg.raise_exit.bid, "except") not in edge_kinds(body)

    def test_raise_targets_innermost_handler(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    raise ValueError()
                except ValueError:
                    caught()
            """
        )
        raiser = block_with(cfg, "raise ValueError()")
        handler = block_with(cfg, "caught()")
        assert (handler.bid, "except") in edge_kinds(raiser)

    def test_raise_outside_try_goes_to_raise_exit(self):
        cfg = cfg_of(
            """
            def f():
                raise RuntimeError()
            """
        )
        raiser = block_with(cfg, "raise RuntimeError()")
        assert (cfg.raise_exit.bid, "except") in edge_kinds(raiser)
        assert cfg.exit.bid not in cfg.reachable()

    def test_finally_sequences_normal_and_handled_paths(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    risky()
                except ValueError:
                    handle()
                finally:
                    cleanup()
                done()
            """
        )
        final = block_with(cfg, "cleanup()")
        done = block_with(cfg, "done()")
        body = block_with(cfg, "risky()")
        handler = block_with(cfg, "handle()")
        assert reaches(cfg, body, final)
        assert reaches(cfg, handler, final)
        assert reaches(cfg, final, done)


# ---------------------------------------------------------------------------
# async / nested defs / awaits
# ---------------------------------------------------------------------------


class TestAsyncAndNesting:
    def test_await_detection_is_statement_local(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                async def f():
                    x = await g()
                    y = plain()
                """
            )
        )
        func = tree.body[0]
        assert stmt_contains_await(func.body[0])
        assert not stmt_contains_await(func.body[1])

    def test_async_for_and_async_with_are_suspension_points(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                async def f(xs, cm):
                    async for x in xs:
                        pass
                    async with cm:
                        pass
                """
            )
        )
        func = tree.body[0]
        assert stmt_contains_await(func.body[0])
        assert stmt_contains_await(func.body[1])

    def test_nested_async_def_is_opaque(self):
        """An await inside a nested def is the nested function's suspension,
        not the enclosing scope's."""
        tree = ast.parse(
            textwrap.dedent(
                """
                def outer():
                    async def inner():
                        await g()
                    return inner
                """
            )
        )
        outer = tree.body[0]
        nested_def_stmt = outer.body[0]
        assert not stmt_contains_await(nested_def_stmt)
        lam = ast.parse("lambda: [x async for x in xs]", mode="eval").body
        assert not expr_contains_await(lam)

    def test_iter_cfgs_yields_nested_async_defs_separately(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                class C:
                    async def outer(self):
                        async def inner():
                            await g()
                        await h()
                """
            )
        )
        cfgs = list(iter_cfgs(tree))
        names = [cfg.scope.name for _, cfg in cfgs]
        assert names == ["outer", "inner"]
        by_name = {cfg.scope.name: (cls, cfg) for cls, cfg in cfgs}
        outer_class, outer_cfg = by_name["outer"]
        assert outer_class is not None and outer_class.name == "C"
        assert outer_cfg.is_async
        # outer's own blocks suspend only at `await h()`; the nested def
        # statement itself is not a suspension point.
        awaiting = [
            b for b in outer_cfg.blocks if b.has_await() and b.stmts
        ]
        assert len(awaiting) == 1
        assert "await h()" in ast.unparse(awaiting[0].stmts[-1])

    def test_build_cfg_rejects_non_scope(self):
        with pytest.raises(TypeError):
            build_cfg(ast.parse("x = 1", mode="exec").body[0])


# ---------------------------------------------------------------------------
# dataflow: generic engine
# ---------------------------------------------------------------------------


class TestSolveForward:
    def test_reaching_definitions_merge_at_join(self):
        cfg = cfg_of(
            """
            def f(cond):
                x = 1
                if cond:
                    x = 2
                use(x)
            """
        )
        rd = ReachingDefinitions(cfg)
        join = block_with(cfg, "use(x)")
        defs = rd.definitions_reaching(join, "x")
        # Both the initial and the branch assignment may reach the use.
        assert len(defs) == 2

    def test_reaching_definitions_kill_on_rebind(self):
        cfg = cfg_of(
            """
            def f():
                x = 1
                x = 2
                use(x)
            """
        )
        rd = ReachingDefinitions(cfg)
        join = block_with(cfg, "use(x)")
        # Straight-line rebind: the in-state of the use's *block* is what
        # the analysis exposes; both assignments live in the same block, so
        # look at the exit instead.
        defs_at_exit = rd.definitions_reaching(cfg.exit, "x")
        assert len(defs_at_exit) == 1
        assert join is cfg.blocks[cfg.entry.bid]  # all one straight line

    def test_loop_reaches_fixpoint(self):
        cfg = cfg_of(
            """
            def f(n):
                x = 0
                while n > 0:
                    x = x + 1
                    n -= 1
                use(x)
            """
        )
        rd = ReachingDefinitions(cfg)
        use = block_with(cfg, "use(x)")
        # Zero-trip and looped definitions both reach the use.
        assert len(rd.definitions_reaching(use, "x")) == 2

    def test_must_analysis_edge_sensitive_guard(self):
        """Intersection merge drops facts proven on only one path, and
        edge-sensitive transfer proves facts on the true edge only."""
        cfg = cfg_of(
            """
            def f(obs):
                if obs is not None:
                    a = 1
                else:
                    b = 2
                c = 3
            """
        )

        def transfer(block, in_state):
            by_kind = {}
            if block.test is not None:
                by_kind["true"] = frozenset(in_state | {"proven"})
            return frozenset(in_state), by_kind

        in_states = solve_forward(cfg, frozenset(), transfer, must=True)
        true_block = block_with(cfg, "a = 1")
        false_block = block_with(cfg, "b = 2")
        join = block_with(cfg, "c = 3")
        assert "proven" in in_states[true_block.bid]
        assert "proven" not in in_states[false_block.bid]
        assert "proven" not in in_states[join.bid]

    def test_merge_helpers(self):
        assert merge_union([frozenset({1}), frozenset({2})]) == frozenset({1, 2})
        assert merge_intersection(
            [frozenset({1, 2}), frozenset({2, 3})]
        ) == frozenset({2})
        assert merge_intersection([None, frozenset({1})]) == frozenset({1})
        assert merge_intersection([]) is None


# ---------------------------------------------------------------------------
# dataflow: await-crossing reachability
# ---------------------------------------------------------------------------


class TestCrossedAwaitPaths:
    def test_await_between_check_and_write(self):
        cfg = cfg_of(
            """
            async def f(self):
                checked = self.ready
                await gate()
                self.ready = False
            """
        )
        src = block_with(cfg, "checked = self.ready")
        flags = crossed_await_paths(cfg, {src.bid})
        write = block_with(cfg, "self.ready = False")
        assert flags[write.bid] is True

    def test_branch_avoiding_await_does_not_cross(self):
        cfg = cfg_of(
            """
            async def f(self, fast):
                start = self.state
                if fast:
                    self.state = 1
                else:
                    await slow()
                    self.state = 2
            """
        )
        src = block_with(cfg, "start = self.state")
        flags = crossed_await_paths(cfg, {src.bid})
        fast_write = block_with(cfg, "self.state = 1")
        slow_write = block_with(cfg, "self.state = 2")
        assert flags[fast_write.bid] is False
        assert flags[slow_write.bid] is True

    def test_source_block_own_await_counts(self):
        cfg = cfg_of(
            """
            async def f(self):
                x = self.v; await g(); self.v = x
            """
        )
        src = cfg.entry
        flags = crossed_await_paths(cfg, {src.bid})
        # Everything downstream of the self-awaiting source is tainted.
        assert flags[cfg.exit.bid] is True

    def test_loop_carried_await(self):
        cfg = cfg_of(
            """
            async def f(self):
                probe = self.seq
                while self.running:
                    await tick()
                self.seq = probe + 1
            """
        )
        src = block_with(cfg, "probe = self.seq")
        write = block_with(cfg, "self.seq = probe + 1")
        flags = crossed_await_paths(cfg, {src.bid})
        # The zero-trip path avoids the await... but a path through the
        # loop body crosses it; may-analysis reports the crossing.
        assert flags[write.bid] is True
