"""Unit tests for the observability layer (`repro.obs`).

Covers the registry (counters/gauges/histograms, idempotent registration,
bucketing and quantiles), the span log (pairing, retrospective emits,
unpaired tolerance), both serialisation formats (Prometheus text exposition
and JSONL round-trip), and the percentile aggregation behind ``repro obs``.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import Obs
from repro.obs.exposition import (
    load_jsonl,
    render_prometheus,
    write_jsonl,
    write_prometheus,
)
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.spans import SpanLog
from repro.obs.summary import percentile, span_stats, summarize_records, summary_dict


class TestRegistry:
    def test_counter_accumulates_per_labelset(self):
        registry = MetricsRegistry()
        sends = registry.counter("sends_total", "sends", labels=("proc",))
        sends.labels("p0").inc()
        sends.labels("p0").inc(2)
        sends.labels("p1").inc()
        snap = registry.snapshot()
        assert snap["counters"] == {"sends_total{proc=p0}": 3, "sends_total{proc=p1}": 1}

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="counters only go up"):
            registry.counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert registry.snapshot()["gauges"]["depth"] == 4

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help", labels=("a",))
        again = registry.counter("c", "different help", labels=("a",))
        assert first is again

    def test_registration_rejects_kind_mismatch(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("c")

    def test_registration_rejects_label_mismatch(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("c", labels=("a", "b"))

    def test_wrong_label_arity_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("c", labels=("a", "b"))
        with pytest.raises(ValueError, match="label value"):
            family.labels("only-one")


class TestHistogram:
    def test_bucketing_is_upper_bound_inclusive(self):
        hist = Histogram(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 2.0, 7.0, 100.0):
            hist.observe(value)
        # 0.5 and 1.0 land in <=1; 2.0 in <=5; 7.0 in <=10; 100.0 in +Inf.
        assert hist.counts == [2, 1, 1]
        assert hist.inf_count == 1
        assert hist.cumulative() == [(1.0, 2), (5.0, 3), (10.0, 4), (math.inf, 5)]
        assert hist.count == 5
        assert hist.sum == pytest.approx(110.5)
        assert hist.min == 0.5 and hist.max == 100.0

    def test_quantile_reports_bucket_upper_bound(self):
        hist = Histogram(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 2.0, 2.0, 7.0):
            hist.observe(value)
        assert hist.quantile(0.25) == 1.0
        assert hist.quantile(0.5) == 5.0
        assert hist.quantile(1.0) == 10.0

    def test_quantile_inf_bucket_reports_exact_max(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(42.0)
        assert hist.quantile(0.99) == 42.0

    def test_quantile_empty_is_nan(self):
        assert math.isnan(Histogram(buckets=(1.0,)).quantile(0.5))

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))


class TestSpanLog:
    def test_begin_end_records_duration_and_labels(self):
        spans = SpanLog()
        spans.begin("reconfig.phase1", "p0", at=5.0, proc="p0")
        assert spans.end("reconfig.phase1", "p0", at=8.0, version=2) == 3.0
        assert spans.records == [
            {
                "name": "reconfig.phase1",
                "start": 5.0,
                "end": 8.0,
                "duration": 3.0,
                "labels": {"proc": "p0", "version": "2"},
            }
        ]

    def test_unpaired_end_is_tolerated(self):
        spans = SpanLog()
        assert spans.end("x", "k", at=1.0) is None
        assert len(spans) == 0

    def test_concurrent_spans_keyed_independently(self):
        spans = SpanLog()
        spans.begin("detector.probe", ("p0", "p1"), at=1.0)
        spans.begin("detector.probe", ("p0", "p2"), at=2.0)
        assert spans.end("detector.probe", ("p0", "p2"), at=5.0) == 3.0
        assert spans.is_open("detector.probe", ("p0", "p1"))
        spans.discard("detector.probe", ("p0", "p1"))
        assert not spans.is_open("detector.probe", ("p0", "p1"))

    def test_rebegin_restarts_the_interval(self):
        spans = SpanLog()
        spans.begin("update.round", "p0", at=1.0)
        spans.begin("update.round", "p0", at=4.0)
        assert spans.end("update.round", "p0", at=5.0) == 1.0

    def test_retrospective_emit_and_durations(self):
        spans = SpanLog()
        spans.emit("detector.detection", start=2.0, end=5.0, target="p3")
        spans.emit("detector.detection", start=1.0, end=2.0, target="p4")
        assert spans.durations("detector.detection") == [3.0, 1.0]


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("sends_total", "Messages sent.", labels=("proc",)).labels(
            "p0"
        ).inc(3)
        registry.gauge("crashed", "Crashed processes.").set(1)
        text = render_prometheus(registry)
        assert "# HELP sends_total Messages sent.\n" in text
        assert "# TYPE sends_total counter\n" in text
        assert 'sends_total{proc="p0"} 3\n' in text
        assert "# TYPE crashed gauge\n" in text
        assert "crashed 1\n" in text

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        rtt = registry.histogram("rtt", "RTT.", labels=("proc",), buckets=(0.1, 1.0))
        rtt.labels("p0").observe(0.05)
        rtt.labels("p0").observe(0.5)
        rtt.labels("p0").observe(5.0)
        text = render_prometheus(registry)
        assert 'rtt_bucket{proc="p0",le="0.1"} 1' in text
        assert 'rtt_bucket{proc="p0",le="1"} 2' in text
        assert 'rtt_bucket{proc="p0",le="+Inf"} 3' in text
        assert 'rtt_sum{proc="p0"} 5.55' in text
        assert 'rtt_count{proc="p0"} 3' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("x",)).labels('we"ird\\') .inc()
        assert 'c{x="we\\"ird\\\\"} 1' in render_prometheus(registry)

    def test_deterministic_across_insertion_order(self):
        def build(order):
            registry = MetricsRegistry()
            family = registry.counter("c", labels=("p",))
            for value in order:
                family.labels(value).inc()
            registry.gauge("a_gauge").set(1)
            return render_prometheus(registry)

        assert build(["p2", "p0", "p1"]) == build(["p0", "p1", "p2"])


class TestJsonl:
    def test_round_trip(self, tmp_path):
        obs = Obs()
        obs.count_send("p0", "protocol")
        obs.observe_probe_rtt("p0", 0.02)
        obs.spans.emit("detector.detection", start=1.0, end=3.0, target="p1")
        path = tmp_path / "run.jsonl"
        write_jsonl(path, obs, meta={"command": "test", "seed": 7})
        records = load_jsonl(path)

        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["format"] == "repro-obs/1"
        assert meta["seed"] == 7
        spans = [r for r in records if r["type"] == "span"]
        assert spans == [
            {
                "type": "span",
                "name": "detector.detection",
                "start": 1.0,
                "end": 3.0,
                "duration": 2.0,
                "labels": {"target": "p1"},
            }
        ]
        counters = {r["name"]: r["value"] for r in records if r.get("kind") == "counter"}
        assert counters["repro_messages_sent_total{proc=p0,category=protocol}"] == 1
        # Every line is standard JSON (NaN from empty histograms must not leak).
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_write_prometheus_file(self, tmp_path):
        obs = Obs()
        obs.count_send("p0", "protocol")
        out = write_prometheus(tmp_path / "run.prom", obs.metrics)
        assert out.read_text().startswith("# HELP")


class TestSummary:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.75) == 3.0
        assert percentile(values, 1.0) == 4.0
        assert math.isnan(percentile([], 0.5))
        with pytest.raises(ValueError):
            percentile(values, 0.0)

    def test_span_stats_groups_by_name(self):
        records = [
            {"type": "span", "name": "a", "duration": 1.0},
            {"type": "span", "name": "a", "duration": 3.0},
            {"type": "span", "name": "b", "duration": 2.0},
        ]
        stats = span_stats(records)
        assert stats["a"]["count"] == 2
        assert stats["a"]["p50"] == 1.0
        assert stats["a"]["max"] == 3.0
        assert stats["b"]["sum"] == 2.0

    def test_summarize_records_renders_headline_and_sections(self):
        records = [
            {"type": "meta", "format": "repro-obs/1", "command": "chaos", "seed": 1},
            {"type": "span", "name": "detector.detection", "duration": 0.25},
            {"type": "span", "name": "reconfig.total", "duration": 0.5},
            {"type": "metric", "kind": "counter", "name": "c", "value": 2},
        ]
        text = summarize_records(records)
        assert "run: command=chaos  seed=1" in text
        assert "detection latency" in text
        assert "reconfiguration duration" in text
        assert "counters" in text

    def test_summarize_records_empty_capture(self):
        assert "(capture is empty)" in summarize_records([])

    def test_summary_dict_is_json_serialisable(self):
        obs = Obs()
        obs.count_suspicion("p0", false_suspicion=True)
        obs.spans.emit("reconfig.total", start=0.0, end=1.0)
        payload = summary_dict(obs)
        assert payload["spans"]["reconfig.total"]["count"] == 1
        assert payload["counters"]["repro_false_suspicions_total{proc=p0}"] == 1
        json.dumps(payload)
