"""Integration tests: the three-phase reconfiguration algorithm."""

from __future__ import annotations

import pytest

from repro.analysis import breakdown, reconfiguration_messages
from repro.model.events import EventKind
from repro.sim.failures import crash_after_matching_sends, payload_type_is
from repro.sim.network import FixedDelay
from repro.workloads.scenarios import initiators_of, run_figure3

from conftest import assert_gmp, make_cluster, names


class TestCoordinatorFailure:
    def test_next_ranked_succeeds(self):
        cluster = make_cluster(5, seed=1)
        cluster.crash("p0", at=5.0)
        cluster.settle()
        assert names(cluster.agreed_view()) == ["p1", "p2", "p3", "p4"]
        for member in cluster.live_members():
            assert member.state is not None and member.state.mgr.name == "p1"
        assert_gmp(cluster)

    def test_reconfiguration_initiated_by_second_ranked_only(self):
        cluster = make_cluster(6, seed=2)
        cluster.crash("p0", at=5.0)
        cluster.settle()
        assert initiators_of(cluster) == {"p1"}

    def test_message_cost_close_to_paper_bound(self):
        """Best case #3 (§7.2): one reconfiguration costs about 5n - 9."""
        n = 8
        cluster = make_cluster(n, seed=3, delay_model=FixedDelay(1.0))
        cluster.crash("p0", at=5.0)
        cluster.settle()
        counts = breakdown(cluster.trace)
        # Our counting differs from the paper's by one broadcast-width
        # (DESIGN.md §4); the shape — 5n-ish — must hold.
        assert reconfiguration_messages(n) - n <= counts.algorithm
        assert counts.algorithm <= reconfiguration_messages(n) + n
        assert_gmp(cluster)

    def test_successive_coordinator_failures(self):
        cluster = make_cluster(7, seed=4)
        cluster.crash("p0", at=5.0)
        cluster.crash("p1", at=30.0)
        cluster.crash("p2", at=60.0)
        cluster.settle()
        assert names(cluster.agreed_view()) == ["p3", "p4", "p5", "p6"]
        for member in cluster.live_members():
            assert member.state.mgr.name == "p3"
        assert_gmp(cluster)

    def test_rapid_coordinator_cascade(self):
        # The new coordinator crashes before stabilising — the paper's
        # "continuous failures of reconfiguration initiators".
        cluster = make_cluster(9, seed=5)
        cluster.crash("p0", at=5.0)
        cluster.crash("p1", at=5.5)
        cluster.crash("p2", at=6.0)
        cluster.settle()
        assert names(cluster.agreed_view()) == ["p3", "p4", "p5", "p6", "p7", "p8"]
        assert_gmp(cluster)

    def test_coordinator_and_outer_fail_together(self):
        cluster = make_cluster(6, seed=6)
        cluster.crash("p0", at=5.0)
        cluster.crash("p4", at=5.1)
        cluster.settle()
        assert names(cluster.agreed_view()) == ["p1", "p2", "p3", "p5"]
        assert_gmp(cluster)


class TestInterruptedCommits:
    @pytest.mark.parametrize("reached", [1, 2, 3])
    def test_figure3_partial_commit_restored(self, reached):
        """Mgr dies mid-commit after `reached` sends; reconfiguration must
        make the partially installed view stable (Figure 3)."""
        cluster = run_figure3(n=5, commit_sends_before_crash=reached, seed=7)
        assert_gmp(cluster)
        # The victim's exclusion survived the crash: version 1 removes p4,
        # version 2 removes the dead coordinator.
        survivor = cluster.live_members()[0]
        assert [op.kind for op in survivor.state.seq[:2]] == ["remove", "remove"]
        assert {op.target.name for op in survivor.state.seq[:2]} == {"p4", "p0"}

    def test_invisible_commit_to_nobody(self):
        # Commit reaches zero outers (crash after 0 matching sends is not
        # expressible — the closest is crashing on the first send *to a dead
        # process*): the exclusion must still be honoured because the
        # respondents' plans carry it.
        cluster = make_cluster(5, seed=8, delay_model=FixedDelay(1.0))
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve("p0"),
            payload_type_is("Commit"),
            after=1,
        )
        cluster.crash("p4", at=5.0)
        cluster.settle()
        assert_gmp(cluster, liveness=False)
        survivors = names(cluster.agreed_view())
        assert "p4" not in survivors and "p0" not in survivors

    def test_reconfigurer_dies_mid_commit(self):
        cluster = make_cluster(7, seed=9, delay_model=FixedDelay(1.0))
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve("p1"),
            payload_type_is("ReconfigCommit"),
            after=2,
        )
        cluster.crash("p0", at=5.0)
        cluster.settle()
        assert_gmp(cluster, liveness=False)
        survivors = names(cluster.agreed_view())
        assert "p0" not in survivors and "p1" not in survivors

    def test_reconfigurer_dies_mid_propose(self):
        cluster = make_cluster(7, seed=10, delay_model=FixedDelay(1.0))
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve("p1"),
            payload_type_is("Propose"),
            after=3,
        )
        cluster.crash("p0", at=5.0)
        cluster.settle()
        assert_gmp(cluster, liveness=False)
        survivors = names(cluster.agreed_view())
        assert survivors == ["p2", "p3", "p4", "p5", "p6"]

    def test_reconfigurer_dies_mid_interrogation(self):
        cluster = make_cluster(7, seed=11, delay_model=FixedDelay(1.0))
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve("p1"),
            payload_type_is("Interrogate"),
            after=2,
        )
        cluster.crash("p0", at=5.0)
        cluster.settle()
        assert_gmp(cluster, liveness=False)
        survivors = names(cluster.agreed_view())
        assert survivors == ["p2", "p3", "p4", "p5", "p6"]


class TestReconfigurationSafety:
    def test_views_change_one_process_at_a_time(self):
        cluster = make_cluster(8, seed=12)
        cluster.crash("p0", at=5.0)
        cluster.crash("p3", at=5.2)
        cluster.crash("p6", at=5.4)
        cluster.settle()
        report_views = [
            e
            for e in cluster.trace.events_of_kind(EventKind.INSTALL)
        ]
        by_proc: dict = {}
        for event in report_views:
            prev = by_proc.get(event.proc)
            if prev is not None:
                assert abs(len(event.view) - len(prev)) == 1
            by_proc[event.proc] = event.view
        assert_gmp(cluster)

    def test_interrogated_senior_quits(self):
        # A live coordinator wrongly suspected by everyone receives the
        # interrogation of its junior and must quit (Figure 10's guard).
        cluster = make_cluster(5, seed=13, detector="scripted")
        for observer in ("p1", "p2", "p3", "p4"):
            cluster.suspect(observer, "p0", at=5.0)
        cluster.settle()
        assert cluster.member("p0").quit
        assert names(cluster.agreed_view()) == ["p1", "p2", "p3", "p4"]
        assert_gmp(cluster)

    def test_no_progress_without_majority(self):
        # The initiator cannot assemble a majority: it must quit without
        # installing anything (Section 4.3).
        cluster = make_cluster(6, seed=14)
        for victim in ("p0", "p2", "p3", "p4"):
            cluster.crash(victim, at=5.0)
        cluster.settle()
        assert_gmp(cluster, liveness=False)
        for _, (version, _) in cluster.views().items():
            assert version == 0

    def test_new_coordinator_serves_pending_notices(self):
        # Suspicions reported to the old coordinator are not lost across a
        # reconfiguration (GMP-5 / Proposition 6.4).
        cluster = make_cluster(6, seed=15, detector="scripted")
        cluster.suspect("p3", "p5", at=4.0)  # outer reports p5 to p0
        for observer in ("p1", "p2", "p3", "p4"):
            cluster.suspect(observer, "p0", at=6.0)
        cluster.suspect("p1", "p5", at=6.0)  # belief reaches new mgr also
        cluster.settle()
        survivors = names(cluster.agreed_view())
        assert "p5" not in survivors and "p0" not in survivors
        assert_gmp(cluster)
