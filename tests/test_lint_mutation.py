"""MUT3xx two-phase mutation lint: commit-discipline fixtures."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import run_lint


def write(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def rules_of(result) -> set[str]:
    return {f.rule for f in result.findings}


STATE_MODULE = """
    from dataclasses import dataclass, field

    @dataclass
    class LocalState:
        view: list = field(default_factory=list)
        version: int = 0
        mgr: object = None
        faulty: frozenset = frozenset()

        def set_mgr(self, mgr):
            self.mgr = mgr
"""


def make_tree(tmp_path: Path, offender: str, rel: str = "member.py") -> Path:
    write(tmp_path, "core/state.py", STATE_MODULE)
    write(tmp_path, rel, offender)
    return tmp_path


def test_direct_field_write_fires_mut301(tmp_path: Path) -> None:
    make_tree(
        tmp_path,
        """
        class Member:
            def takeover(self):
                self.state.mgr = "me"
        """,
    )
    result = run_lint(tmp_path)
    mut301 = [f for f in result.findings if f.rule == "MUT301"]
    assert len(mut301) == 1
    assert "'mgr'" in mut301[0].message
    assert mut301[0].file == "member.py"


def test_write_through_local_alias_fires_mut301(tmp_path: Path) -> None:
    make_tree(
        tmp_path,
        """
        class Member:
            def takeover(self):
                state = self.state
                state.version = 3
        """,
    )
    assert "MUT301" in rules_of(run_lint(tmp_path))


def test_write_through_annotated_param_fires_mut301(tmp_path: Path) -> None:
    make_tree(
        tmp_path,
        """
        from core.state import LocalState

        def hijack(s: LocalState):
            s.mgr = "me"
        """,
    )
    assert "MUT301" in rules_of(run_lint(tmp_path))


def test_item_write_fires_mut301(tmp_path: Path) -> None:
    make_tree(
        tmp_path,
        """
        class Member:
            def swap(self):
                self.state.view[0] = "intruder"
        """,
    )
    assert "MUT301" in rules_of(run_lint(tmp_path))


def test_mutating_call_fires_mut302(tmp_path: Path) -> None:
    make_tree(
        tmp_path,
        """
        class Member:
            def accuse(self, target):
                self.state.faulty.add(target)
        """,
    )
    result = run_lint(tmp_path)
    mut302 = [f for f in result.findings if f.rule == "MUT302"]
    assert len(mut302) == 1
    assert "'faulty'" in mut302[0].message


def test_commit_path_modules_are_whitelisted(tmp_path: Path) -> None:
    # The state class itself and the round modules ARE the commit path.
    make_tree(
        tmp_path,
        """
        def commit(state, op):
            state.version = state.version + 1
        """,
        rel="core/rounds.py",
    )
    result = run_lint(tmp_path)
    assert "MUT301" not in rules_of(result)


def test_method_call_on_state_is_clean(tmp_path: Path) -> None:
    # Going through the LocalState API is exactly what the rule wants.
    make_tree(
        tmp_path,
        """
        class Member:
            def takeover(self):
                self.state.set_mgr("me")
        """,
    )
    result = run_lint(tmp_path)
    assert "MUT301" not in rules_of(result)
    assert "MUT302" not in rules_of(result)


def test_unprotected_field_is_clean(tmp_path: Path) -> None:
    make_tree(
        tmp_path,
        """
        class Member:
            def scribble(self):
                self.state.scratch = 1
        """,
    )
    assert run_lint(tmp_path).ok


def test_non_state_object_is_clean(tmp_path: Path) -> None:
    make_tree(
        tmp_path,
        """
        class Member:
            def tune(self):
                self.config.version = 2
        """,
    )
    assert run_lint(tmp_path).ok


def test_allow_comment_suppresses_mut301(tmp_path: Path) -> None:
    make_tree(
        tmp_path,
        """
        class Member:
            def takeover(self):
                self.state.mgr = "me"  # lint: allow[mutation]
        """,
    )
    assert run_lint(tmp_path).ok


def test_tuple_unpack_write_fires_mut301(tmp_path: Path) -> None:
    make_tree(
        tmp_path,
        """
        class Member:
            def shuffle(self):
                other, self.state.mgr = 1, "me"
        """,
    )
    assert "MUT301" in rules_of(run_lint(tmp_path))
