"""Trace levels: COUNTS/OFF must agree with FULL wherever they answer at all."""

from __future__ import annotations

import pytest

from repro.core.service import MembershipCluster
from repro.errors import TraceError
from repro.ids import pid
from repro.model.events import EventKind
from repro.sim.network import FixedDelay
from repro.sim.trace import RunTrace, TraceLevel
from repro.workloads.failures import churn_run


class TestCoerce:
    def test_identity(self):
        assert TraceLevel.coerce(TraceLevel.COUNTS) is TraceLevel.COUNTS

    @pytest.mark.parametrize("name", ["full", "FULL", "Counts", "off"])
    def test_names_any_case(self, name):
        assert TraceLevel.coerce(name) is TraceLevel[name.upper()]

    def test_integers(self):
        assert TraceLevel.coerce(0) is TraceLevel.OFF
        assert TraceLevel.coerce(2) is TraceLevel.FULL

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            TraceLevel.coerce("verbose")

    def test_unknown_integer_rejected(self):
        with pytest.raises(ValueError):
            TraceLevel.coerce(7)


def _churn_pair(n: int = 6):
    """The same deterministic run at FULL and at COUNTS."""
    full = churn_run(n, seed=0, trace_level="full")
    counts = churn_run(n, seed=0, trace_level="counts")
    return full.trace, counts.trace


class TestCountsAgreesWithFull:
    def test_message_counts(self):
        full, counts = _churn_pair()
        assert counts.message_count() == full.message_count()
        assert counts.message_count(None) == full.message_count(None)
        assert counts.message_count("detector") == full.message_count("detector")

    def test_counts_by_category_and_type(self):
        full, counts = _churn_pair()
        assert counts.message_counts_by_category() == full.message_counts_by_category()
        assert counts.message_counts_by_type() == full.message_counts_by_type()

    def test_kind_counts(self):
        full, counts = _churn_pair()
        assert counts.kind_counts() == full.kind_counts()

    def test_event_tally_matches(self):
        full, counts = _churn_pair()
        assert len(counts) == len(full)

    def test_crash_sets_exact_at_every_level(self):
        full, counts = _churn_pair()
        assert counts.crashed() == full.crashed()
        assert counts.quit_or_crashed() == full.quit_or_crashed()


class TestLevelRestrictions:
    def test_history_requires_full(self):
        trace = RunTrace(level="counts")
        trace.record(pid("a"), EventKind.START, time=0.0)
        with pytest.raises(TraceError):
            trace.history(pid("a"))
        with pytest.raises(TraceError):
            trace.histories()

    def test_record_returns_none_below_full(self):
        trace = RunTrace(level="counts")
        assert trace.record(pid("a"), EventKind.START, time=0.0) is None
        full = RunTrace()
        assert full.record(pid("a"), EventKind.START, time=0.0) is not None

    def test_off_level_counts_read_zero(self):
        cluster = churn_run(4, seed=0, trace_level="off")
        assert cluster.trace.message_count(None) == 0
        assert cluster.trace.message_counts_by_category() == {}
        # ...but ground truth stays exact (the oracle depends on it).
        assert {p.name for p in cluster.trace.crashed()} == {"p0", "p3"}


class TestClusterPlumbing:
    def test_cluster_accepts_level_strings(self):
        cluster = MembershipCluster.of_size(
            3, seed=0, delay_model=FixedDelay(1.0), trace_level="counts"
        )
        assert cluster.trace.level is TraceLevel.COUNTS

    def test_default_level_is_full(self):
        cluster = MembershipCluster.of_size(3, seed=0)
        assert cluster.trace.level is TraceLevel.FULL

    def test_counts_cluster_reaches_same_agreement(self):
        full = churn_run(6, seed=0, trace_level="full")
        counts = churn_run(6, seed=0, trace_level="counts")
        assert counts.agreed_view() == full.agreed_view()
        assert counts.agreed_version() == full.agreed_version()
        assert counts.scheduler.events_run == full.scheduler.events_run
