"""Unit and property tests for LocalState — the paper's per-process variables."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import Op, Plan, add, remove
from repro.core.state import LocalState
from repro.errors import NotInViewError
from repro.ids import pid

M, P, Q, R, S = (pid(n) for n in "mpqrs")


def state(me=Q, view=(M, P, Q, R, S)) -> LocalState:
    return LocalState(me=me, view=list(view))


class TestBasics:
    def test_initial_mgr_is_most_senior(self):
        assert state().mgr == M

    def test_empty_view_rejected(self):
        with pytest.raises(ValueError):
            LocalState(me=Q, view=[])

    def test_rank_and_seniors(self):
        s = state()
        assert s.my_rank() == 3
        assert s.seniors() == (M, P)

    def test_majority(self):
        assert state().majority() == 3


class TestFaultBookkeeping:
    def test_note_faulty_tracks_both_sets(self):
        s = state()
        assert s.note_faulty(P)
        assert P in s.faulty and P in s.ever_faulty

    def test_note_faulty_idempotent(self):
        s = state()
        s.note_faulty(P)
        assert not s.note_faulty(P)

    def test_never_faults_self(self):
        s = state()
        assert not s.note_faulty(Q)
        assert Q not in s.ever_faulty

    def test_non_member_goes_to_ever_faulty_only(self):
        s = state()
        x = pid("x")
        assert s.note_faulty(x)
        assert x in s.ever_faulty and x not in s.faulty

    def test_faulty_joiner_removed_from_recovered(self):
        s = state()
        x = pid("x")
        s.note_operating(x)
        s.note_faulty(x)
        assert x not in s.recovered

    def test_hi_faulty_only_contains_seniors(self):
        s = state()
        s.note_faulty(P)
        s.note_faulty(R)
        assert s.hi_faulty() == (P,)

    def test_note_operating_rejects_members_and_faulty(self):
        s = state()
        assert not s.note_operating(P)
        x = pid("x")
        s.note_faulty(x)
        assert not s.note_operating(x)

    def test_note_operating_queues_in_order(self):
        s = state()
        x, y = pid("x"), pid("y")
        s.note_operating(x)
        s.note_operating(y)
        assert s.recovered == [x, y]


class TestInitiationRule:
    def test_no_initiation_without_faulty_seniors(self):
        assert not state().should_initiate_reconfiguration()

    def test_initiates_when_all_seniors_faulty(self):
        s = state()
        s.note_faulty(M)
        s.note_faulty(P)
        assert s.should_initiate_reconfiguration()

    def test_partial_senior_faults_do_not_initiate(self):
        s = state()
        s.note_faulty(M)
        assert not s.should_initiate_reconfiguration()

    def test_manager_never_initiates(self):
        s = state(me=M)
        assert not s.should_initiate_reconfiguration()

    def test_most_junior_initiates_only_if_everyone_above_faulty(self):
        s = state(me=S)
        for senior in (M, P, Q, R):
            s.note_faulty(senior)
        assert s.should_initiate_reconfiguration()


class TestApply:
    def test_remove_advances_version_and_seq(self):
        s = state()
        s.note_faulty(R)
        s.apply(remove(R), 1)
        assert R not in s.view and s.version == 1 and s.seq == [remove(R)]
        assert R not in s.faulty  # cleared on removal

    def test_add_appends_at_lowest_rank(self):
        s = state()
        x = pid("x")
        s.apply(add(x), 1)
        assert s.view[-1] == x

    def test_version_must_be_successor(self):
        s = state()
        with pytest.raises(NotInViewError):
            s.apply(remove(R), 2)

    def test_remove_non_member_rejected(self):
        s = state()
        with pytest.raises(NotInViewError):
            s.apply(remove(pid("x")), 1)

    def test_add_existing_member_rejected(self):
        s = state()
        with pytest.raises(NotInViewError):
            s.apply(add(P), 1)

    def test_version_equals_seq_length_invariant(self):
        s = state()
        s.apply(remove(R), 1)
        s.apply(add(pid("x")), 2)
        assert s.version == len(s.seq)


class TestGetNext:
    def test_joins_served_before_removals(self):
        s = state()
        s.note_faulty(R)
        x = pid("x")
        s.note_operating(x)
        assert s.next_operation() == add(x)

    def test_removals_in_view_order(self):
        s = state()
        s.note_faulty(R)
        s.note_faulty(P)
        assert s.next_operation() == remove(P)

    def test_skip_excludes_subject(self):
        s = state()
        s.note_faulty(P)
        assert s.next_operation(skip=P) is None

    def test_none_when_nothing_pending(self):
        assert state().next_operation() is None


class TestPlans:
    def test_set_plan_replaces(self):
        s = state()
        s.set_plan(Plan(remove(R), M, 1))
        s.set_plan(Plan(remove(P), M, 2))
        assert len(s.plans) == 1 and s.plans[0].version == 2

    def test_set_plan_none_clears(self):
        s = state()
        s.set_plan(Plan(remove(R), M, 1))
        s.set_plan(None)
        assert s.plans == []

    def test_placeholder_appends(self):
        s = state()
        s.set_plan(Plan(remove(R), M, 1))
        s.append_placeholder(P)
        assert len(s.plans) == 2 and s.plans[1].is_placeholder


@st.composite
def op_sequences(draw):
    """Random feasible op sequences over a growing/shrinking view."""
    ops = []
    view = [pid(f"n{i}") for i in range(draw(st.integers(3, 6)))]
    me = view[-1]
    pool = [pid(f"x{i}") for i in range(6)]
    for _ in range(draw(st.integers(0, 10))):
        removable = [m for m in view if m != me]
        choices = []
        if removable:
            choices.append("remove")
        addable = [x for x in pool if x not in view]
        if addable:
            choices.append("add")
        kind = draw(st.sampled_from(choices))
        if kind == "remove":
            target = draw(st.sampled_from(removable))
            view.remove(target)
            ops.append(remove(target))
        else:
            target = draw(st.sampled_from(addable))
            view.append(target)
            ops.append(add(target))
    return me, ops


class TestStateProperties:
    @settings(max_examples=60, deadline=None)
    @given(op_sequences())
    def test_apply_maintains_invariants(self, seq):
        me, ops = seq
        initial = [pid(f"n{i}") for i in range(int(me.name[1:]) + 1)]
        s = LocalState(me=me, view=list(initial))
        for i, op in enumerate(ops, start=1):
            if op.is_remove:
                s.note_faulty(op.target)
            else:
                s.note_operating(op.target)
            s.apply(op, i)
            # Invariants: version == |seq|; me stays present; no duplicates.
            assert s.version == len(s.seq) == i
            assert s.me in s.view
            assert len(set(s.view)) == len(s.view)
            # Every faulty member is actually a member.
            assert all(f in s.view for f in s.faulty)

    @settings(max_examples=60, deadline=None)
    @given(op_sequences())
    def test_replaying_seq_reconstructs_view(self, seq):
        """Memb(p, c) is a fold of seq over the initial view (Section 2.2)."""
        me, ops = seq
        initial = [pid(f"n{i}") for i in range(int(me.name[1:]) + 1)]
        s = LocalState(me=me, view=list(initial))
        for i, op in enumerate(ops, start=1):
            if op.is_remove:
                s.note_faulty(op.target)
            else:
                s.note_operating(op.target)
            s.apply(op, i)
        replay = list(initial)
        for op in s.seq:
            if op.is_remove:
                replay.remove(op.target)
            else:
                replay.append(op.target)
        assert tuple(replay) == s.view
