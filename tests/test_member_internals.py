"""White-box tests of GMPMember edge cases.

These drive the member state machine through paths the scenario tests may
only hit incidentally: future-view buffering, S1 discards, stale and
misattributed messages, broadcast ordering, and the AppLayer hook.
"""

from __future__ import annotations

import pytest

from repro.core.member import AppLayer, GMPMember
from repro.core.messages import Commit, Invite, UpdateOk, remove
from repro.detectors.scripted import ScriptedDetector
from repro.ids import pid
from repro.model.events import EventKind
from repro.sim.network import FixedDelay, Network, PerPairDelay
from repro.sim.scheduler import Scheduler
from repro.sim.trace import RunTrace

from conftest import assert_gmp, make_cluster, names

M, A, B, C = pid("m"), pid("a"), pid("b"), pid("c")


def build_group(n_extra: int = 3, delay_model=None):
    """A hand-wired group [m, a, b, c...] with scripted detectors."""
    scheduler = Scheduler()
    trace = RunTrace()
    network = Network(
        scheduler,
        trace,
        delay_model=delay_model if delay_model is not None else FixedDelay(1.0),
    )
    view = [M, A, B, C][: n_extra + 1]
    members = {}
    for proc in view:
        detector = ScriptedDetector(scheduler)
        members[proc] = GMPMember(proc, network, detector, initial_view=list(view))
    for member in members.values():
        member.start()
    return scheduler, network, members


class TestFutureViewBuffering:
    def test_future_commit_is_buffered_until_applicable(self):
        # Per-channel FIFO means a single coordinator cannot reorder its own
        # rounds, so drive the member directly: a version-2 commit arriving
        # (from the member's perspective) before version 1 must be held,
        # then applied once version 1 lands — installs stay dense.
        scheduler, network, members = build_group()
        b = members[B]
        commit_v2 = Commit(remove(A), 2, None)
        commit_v1 = Commit(remove(C), 1, None)
        b.on_message(M, commit_v2)
        assert b.version == 0 and len(b.buffer) == 1
        b.on_message(M, commit_v1)
        assert b.version == 2
        assert names(b.view) == ["m", "b"]
        installs = [
            e.version for e in network.trace.events_of(B, EventKind.INSTALL)
        ]
        assert installs == [1, 2]

    def test_stale_invite_ignored(self):
        scheduler, network, members = build_group()
        members[M].on_suspect(C)
        scheduler.run()
        b = members[B]
        before = b.version
        # Replay an old invite directly at b: version 1 <= current version.
        b.on_message(M, Invite(remove(C), 1))
        assert b.version == before
        assert b.update_round is None

    def test_invite_from_non_coordinator_ignored(self):
        scheduler, network, members = build_group()
        scheduler.run(until=2.0)
        b = members[B]
        b.on_message(A, Invite(remove(C), 1))  # a is not the coordinator
        assert not b.state.plans
        scheduler.run()
        assert b.version == 0


class TestS1Isolation:
    def test_messages_from_suspected_sender_discarded(self):
        scheduler, network, members = build_group()
        scheduler.run(until=2.0)
        members[B].on_suspect(A)
        # a (alive, unaware) multicasts... any message to b.
        members[A].send(B, UpdateOk(1))
        scheduler.run(until=5.0)
        discards = network.trace.events_of(B, EventKind.DISCARD)
        assert any(e.peer == A for e in discards)

    def test_buffered_messages_dropped_when_sender_suspected(self):
        delays = PerPairDelay(default=FixedDelay(1.0))
        scheduler, network, members = build_group(3, delay_model=delays)
        b = members[B]
        # A future-view commit lands in b's buffer...
        b.buffer.hold(M, Commit(remove(C), 3, None))
        assert len(b.buffer) == 1
        # ...then b starts believing m faulty: the buffer entry must die.
        b.on_suspect(M)
        assert len(b.buffer) == 0


class TestStaleRoundResponses:
    def test_update_ok_for_wrong_version_ignored(self):
        scheduler, network, members = build_group()
        m = members[M]
        m.on_suspect(C)  # opens round for version 1
        assert m.update_round is not None
        m.on_message(A, UpdateOk(7))  # nonsense version
        assert m.update_round is not None
        assert A not in m.update_round.oks

    def test_update_ok_at_non_coordinator_ignored(self):
        scheduler, network, members = build_group()
        b = members[B]
        b.on_message(A, UpdateOk(1))  # b never opened a round
        assert b.update_round is None


class TestBroadcastOrdering:
    def test_broadcast_first_reorders(self):
        scheduler, network, members = build_group()
        m = members[M]
        m.broadcast_first = (C,)
        assert m._ordered([A, B, C]) == [C, A, B]

    def test_default_order_preserved(self):
        scheduler, network, members = build_group()
        assert members[M]._ordered([A, B, C]) == [A, B, C]


class TestAppLayerHook:
    def test_unknown_payloads_routed_to_app(self):
        scheduler, network, members = build_group()

        class Recorder(AppLayer):
            def __init__(self):
                self.messages = []
                self.views = []
                self.flushes = []

            def on_message(self, sender, payload):
                self.messages.append((sender, payload))

            def on_view_installed(self, version, view, mgr):
                self.views.append((version, view, mgr))

            def before_view_agreement(self, version):
                self.flushes.append(version)

        recorder = Recorder()
        members[B].app = recorder
        members[A].send(B, "application payload")
        scheduler.run(until=3.0)
        assert recorder.messages == [(A, "application payload")]
        # Drive a view change: app sees the flush then the install.
        members[M].on_suspect(C)
        scheduler.run()
        assert recorder.flushes == [1]
        assert [v for v, _, _ in recorder.views] == [1]
        mgr_of_view = recorder.views[0][2]
        assert mgr_of_view == M

    def test_coordinator_flush_fires_before_commit(self):
        scheduler, network, members = build_group()

        class FlushProbe(AppLayer):
            def __init__(self, member):
                self.member = member
                self.version_at_flush = None

            def before_view_agreement(self, version):
                self.version_at_flush = self.member.state.version

        probe = FlushProbe(members[M])
        members[M].app = probe
        members[M].on_suspect(C)
        scheduler.run()
        # The coordinator flushed while still at version 0 — before apply.
        assert probe.version_at_flush == 0


class TestQuitPaths:
    def test_member_listed_in_commit_faulty_quits(self):
        cluster = make_cluster(5, seed=1, detector="scripted")
        # p0 believes both p3 and p4 faulty; the commit for p4's removal
        # lists p3 in Faulty — p3 must quit on receipt.
        cluster.suspect("p0", "p4", at=5.0)
        cluster.suspect("p0", "p3", at=5.1)
        cluster.settle()
        assert cluster.member("p3").quit
        assert cluster.member("p4").quit
        assert names(cluster.agreed_view()) == ["p0", "p1", "p2"]
        assert_gmp(cluster)

    def test_contingent_target_quits_without_separate_invite(self):
        cluster = make_cluster(5, seed=2, detector="scripted")
        cluster.suspect("p0", "p3", at=5.0)
        cluster.suspect("p0", "p4", at=5.05)
        cluster.settle()
        # p4's exclusion rode the commit of p3's: it saw itself in the
        # contingency and quit.
        assert cluster.member("p4").quit
        assert cluster.agreed_version() == 2
        assert_gmp(cluster)


class TestConstructorValidation:
    def test_member_must_be_in_its_view(self):
        scheduler = Scheduler()
        network = Network(scheduler, RunTrace(), delay_model=FixedDelay(1.0))
        with pytest.raises(ValueError):
            GMPMember(
                pid("x"),
                network,
                ScriptedDetector(scheduler),
                initial_view=[A, B],
            )

    def test_joiner_without_contacts_rejected(self):
        scheduler = Scheduler()
        network = Network(scheduler, RunTrace(), delay_model=FixedDelay(1.0))
        with pytest.raises(ValueError):
            GMPMember(pid("x"), network, ScriptedDetector(scheduler))

    def test_invalid_reconfig_phases_rejected(self):
        scheduler = Scheduler()
        network = Network(scheduler, RunTrace(), delay_model=FixedDelay(1.0))
        with pytest.raises(ValueError):
            GMPMember(
                A,
                network,
                ScriptedDetector(scheduler),
                initial_view=[A],
                reconfig_phases=1,
            )


class TestRoundOrderedPendingCache:
    """ordered_pending() caches sorted(pending) and every mutating method
    must invalidate it — the phase loops iterate it per resolution step."""

    def test_update_round_cache_invalidated_on_ok(self):
        from repro.core.rounds import UpdateRound
        from repro.core.messages import remove

        round_ = UpdateRound(op=remove(C), version=2, pending={A, B, M})
        assert round_.ordered_pending() == (A, B, M)
        # Cached: same tuple object until a mutation happens.
        assert round_.ordered_pending() is round_.ordered_pending()
        round_.record_ok(A)
        assert round_.ordered_pending() == (B, M)

    def test_update_round_cache_invalidated_on_faulty(self):
        from repro.core.rounds import UpdateRound
        from repro.core.messages import remove

        round_ = UpdateRound(op=remove(C), version=2, pending={A, B})
        round_.ordered_pending()
        round_.record_faulty(B)
        assert round_.ordered_pending() == (A,)

    def test_update_round_miss_does_not_invalidate(self):
        from repro.core.rounds import UpdateRound
        from repro.core.messages import remove

        round_ = UpdateRound(op=remove(C), version=2, pending={A})
        cached = round_.ordered_pending()
        round_.record_ok(B)  # not pending: no-op
        assert round_.ordered_pending() is cached

    def test_reconfig_round_cache_tracks_all_mutators(self):
        from repro.core.determine import PhaseOneResponse
        from repro.core.rounds import ReconfigPhase, ReconfigRound

        round_ = ReconfigRound(
            phase=ReconfigPhase.INTERROGATE, view_size=4, pending={A, B, C}
        )
        assert round_.ordered_pending() == (A, B, C)
        round_.record_response(
            PhaseOneResponse(proc=A, version=1, seq=(), plans=())
        )
        assert round_.ordered_pending() == (B, C)
        round_.record_faulty(C)
        assert round_.ordered_pending() == (B,)
        round_.set_pending({M, B})
        assert round_.ordered_pending() == (B, M)
        round_.record_propose_ok(M)
        assert round_.ordered_pending() == (B,)
